package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"not-an-experiment"}, options{platform: "both", seed: 1, quick: true}, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunUnknownPlatform(t *testing.T) {
	if err := run([]string{"fig1"}, options{platform: "pentium", seed: 1, quick: true}, io.Discard); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"fig1"}, options{platform: "skylake", seed: 1, quick: true}, io.Discard); err != nil {
		t.Fatalf("fig1 failed: %v", err)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	if err := run([]string{"table1", "fig1"}, options{platform: "both", seed: 42, quick: true}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestRunJobsIdenticalOutput is the CLI-level determinism check: the same
// run with different worker counts must produce byte-identical reports.
func TestRunJobsIdenticalOutput(t *testing.T) {
	outs := map[int]string{}
	for _, jobs := range []int{1, 4} {
		var buf bytes.Buffer
		opt := options{platform: "both", seed: 42, quick: true, jobs: jobs}
		if err := run([]string{"fig1", "table1", "fig2"}, opt, &buf); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		outs[jobs] = buf.String()
	}
	if outs[1] != outs[4] {
		t.Fatalf("output differs between -jobs 1 and -jobs 4:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", outs[1], outs[4])
	}
}

func TestRunJSONExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	opt := options{platform: "skylake", seed: 42, quick: true, jobs: 2, jsonPath: path}
	if err := run([]string{"fig1", "table1"}, opt, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]map[string]float64
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, id := range []string{"fig1", "table1"} {
		if len(metrics[id]) == 0 {
			t.Fatalf("no metrics exported for %q; got %v", id, metrics)
		}
	}
}

// TestRunFaultsJSONExport checks the robustness extension end to end from
// the CLI: the faults experiment must export per-scenario BER/goodput
// metrics and report zero ARQ residual under every injected scenario.
func TestRunFaultsJSONExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	opt := options{platform: "both", seed: 42, quick: true, jobs: 2, jsonPath: path}
	if err := run([]string{"faults"}, opt, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]map[string]float64
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	got := metrics["faults"]
	if len(got) == 0 {
		t.Fatalf("no faults metrics exported; got %v", metrics)
	}
	for _, sc := range []string{"none", "preempt", "pollute", "drift", "spikes", "migrate", "all"} {
		if got["faults_"+sc+"_arq_delivered"] != 1 {
			t.Errorf("scenario %s: ARQ did not deliver", sc)
		}
		if v := got["faults_"+sc+"_arq_residual"]; v != 0 {
			t.Errorf("scenario %s: ARQ residual %v, want 0", sc, v)
		}
		if sc != "none" {
			if v := got["faults_"+sc+"_raw_ber"]; v <= 0.01 {
				t.Errorf("scenario %s: raw BER %v, want > 1%%", sc, v)
			}
		}
		if _, ok := got["faults_"+sc+"_arq_goodput_kbps"]; !ok {
			t.Errorf("scenario %s: goodput metric missing", sc)
		}
	}
}

// TestRunBadOutputPathsFailFast: -json and -trace files are created before
// any experiment runs, so a bad path errors immediately instead of after
// minutes of simulation. The full suite as the experiment list proves the
// point: it would take far longer than the test timeout if it actually ran.
func TestRunBadOutputPathsFailFast(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out.json")
	if err := run([]string{"all"}, options{platform: "both", seed: 1, jsonPath: bad}, io.Discard); err == nil {
		t.Fatal("bad -json path accepted")
	}
	if err := run([]string{"all"}, options{platform: "both", seed: 1, tracePath: bad}, io.Discard); err == nil {
		t.Fatal("bad -trace path accepted")
	}
}

func TestRunTraceFilterRequiresTrace(t *testing.T) {
	if err := run([]string{"fig1"}, options{platform: "skylake", seed: 1, quick: true, traceFilter: "channel"}, io.Discard); err == nil {
		t.Fatal("-trace-filter without -trace accepted")
	}
}

func TestRunBadTraceFilter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.json")
	opt := options{platform: "skylake", seed: 1, quick: true, tracePath: path, traceFilter: "channel,bogus"}
	if err := run([]string{"fig1"}, opt, io.Discard); err == nil {
		t.Fatal("unknown -trace-filter package accepted")
	}
}

// TestRunTraceExport runs a traced experiment end to end through the CLI
// path: the Chrome export must be valid trace-event JSON, the JSONL export
// one object per line, and the report must carry the event-count summary.
func TestRunTraceExport(t *testing.T) {
	dir := t.TempDir()
	chromePath := filepath.Join(dir, "trace.json")
	var report bytes.Buffer
	opt := options{platform: "skylake", seed: 42, quick: true, jobs: 2, tracePath: chromePath, traceFilter: "channel,sim"}
	if err := run([]string{"fig7"}, opt, &report); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("Chrome trace has no events")
	}
	if !bytes.Contains(report.Bytes(), []byte("trace: fig7")) {
		t.Fatalf("report lacks the per-experiment trace summary:\n%s", report.String())
	}

	jsonlPath := filepath.Join(dir, "trace.jsonl")
	opt.tracePath = jsonlPath
	if err := run([]string{"fig7"}, opt, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("JSONL export has %d lines", len(lines))
	}
	for i, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal(ln, &obj); err != nil {
			t.Fatalf("JSONL line %d invalid: %v", i+1, err)
		}
	}
}

// TestFailedRunRemovesOutputFiles: output files are pre-created for the
// fail-fast check, but a failed run must not leave them behind.
func TestFailedRunRemovesOutputFiles(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "m.json")
	tracePath := filepath.Join(dir, "t.json")
	opt := options{platform: "skylake", seed: 1, quick: true, jsonPath: jsonPath, tracePath: tracePath}
	if err := run([]string{"fig1", "not-an-experiment"}, opt, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, p := range []string{jsonPath, tracePath} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("failed run left %s behind (stat err: %v)", p, err)
		}
	}
}

// pipelineTemplate is a small fast scenario for CLI template tests; the
// gt-100 assertion variant below is guaranteed to fail (pipeline_errors
// is 0 on the quiet channel).
const pipelineTemplate = `id: cli-demo
title: CLI demo scenario
kind: pipeline
channel:
  noise_period: 0
pipeline:
  message: "1011"
assert:
  - metric: pipeline_errors
    op: %s
    value: %s
`

func writeTemplate(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunTemplate runs a template end to end through the CLI path: the
// report must carry the scenario banner and the template-checks block
// with a PASS verdict.
func TestRunTemplate(t *testing.T) {
	path := writeTemplate(t, "demo.yaml", fmt.Sprintf(pipelineTemplate, "eq", "0"))
	var out bytes.Buffer
	opt := options{platform: "skylake", seed: 42, quick: true, template: path}
	if err := run(nil, opt, &out); err != nil {
		t.Fatalf("template run failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"cli-demo — CLI demo scenario", "template checks:", "PASS cli-demo", "metric pipeline_errors eq 0 (got 0)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report lacks %q:\n%s", want, out.String())
		}
	}
}

// TestRunTemplateAssertionFailure: a failing assertion must map to the
// dedicated sentinel (exit code 3 in main), and — unlike an infrastructure
// error — must keep the run's exports, because the run itself completed.
func TestRunTemplateAssertionFailure(t *testing.T) {
	path := writeTemplate(t, "fail.yaml", fmt.Sprintf(pipelineTemplate, "gt", "100"))
	jsonPath := filepath.Join(t.TempDir(), "m.json")
	var out bytes.Buffer
	opt := options{platform: "skylake", seed: 42, quick: true, template: path, jsonPath: jsonPath}
	err := run(nil, opt, &out)
	if err == nil {
		t.Fatalf("failing assertion accepted:\n%s", out.String())
	}
	if !errors.Is(err, errAssertionsFailed) {
		t.Fatalf("error is not errAssertionsFailed (exit code 3): %v", err)
	}
	if !strings.Contains(out.String(), "FAIL cli-demo") {
		t.Errorf("report lacks the FAIL verdict:\n%s", out.String())
	}
	if _, serr := os.Stat(jsonPath); serr != nil {
		t.Errorf("assertion failure removed the metrics export: %v", serr)
	}
}

// TestRunTemplateLoadErrorIsInfra: a malformed template is an
// infrastructure error (exit 1), not an assertion failure (exit 3).
func TestRunTemplateLoadErrorIsInfra(t *testing.T) {
	path := writeTemplate(t, "broken.yaml", "id: x\ntitle: T\nkind: warp\n")
	err := run(nil, options{platform: "skylake", seed: 1, quick: true, template: path}, io.Discard)
	if err == nil {
		t.Fatal("malformed template accepted")
	}
	if errors.Is(err, errAssertionsFailed) {
		t.Fatalf("load error misclassified as assertion failure: %v", err)
	}
	if !strings.Contains(err.Error(), "kind") {
		t.Errorf("error lacks the field path: %v", err)
	}
}

// TestValidateShippedTemplates is the `leakyway validate -template
// templates/` smoke test over the shipped pack.
func TestValidateShippedTemplates(t *testing.T) {
	var out bytes.Buffer
	if err := validate(filepath.Join("..", "..", "templates"), &out); err != nil {
		t.Fatalf("shipped templates invalid: %v", err)
	}
	for _, want := range []string{"ok  fig6", "ok  fig8", "ok  faults", "template(s) valid"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("validate output lacks %q:\n%s", want, out.String())
		}
	}
}

func TestValidateBadTemplate(t *testing.T) {
	path := writeTemplate(t, "broken.yaml", "id: x\ntitle: T\nkind: warp\n")
	var out bytes.Buffer
	if err := validate(path, &out); err == nil {
		t.Fatal("malformed template accepted")
	} else if !strings.Contains(err.Error(), path) {
		t.Errorf("error does not name the file: %v", err)
	}
}

// TestRunTemplateJobsIdenticalOutput extends the CLI determinism check to
// template mode: a template pack run at -jobs 1 and -jobs 4 must render
// byte-identical reports.
func TestRunTemplateJobsIdenticalOutput(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []struct{ name, doc string }{
		{"a.yaml", fmt.Sprintf(pipelineTemplate, "eq", "0")},
		{"b.yaml", "id: cli-walk\ntitle: Walk\nkind: statewalk\nstatewalk:\n" +
			"  message: \"10\"\n  calibrate_samples: 8\n  receiver_ready: 30000\n  phase_step: 5000\n"},
	} {
		if err := os.WriteFile(filepath.Join(dir, f.name), []byte(f.doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	outs := map[int]string{}
	for _, jobs := range []int{1, 4} {
		var buf bytes.Buffer
		opt := options{platform: "skylake", seed: 42, quick: true, jobs: jobs, template: dir}
		if err := run(nil, opt, &buf); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		outs[jobs] = buf.String()
	}
	if outs[1] != outs[4] {
		t.Fatalf("template output differs between -jobs 1 and -jobs 4:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", outs[1], outs[4])
	}
}
