package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testContext builds an engine context with the given job count writing to
// a throwaway buffer.
func testContext(jobs int) *Context {
	ctx := NewContext(&bytes.Buffer{})
	ctx.Quick = true
	ctx.Jobs = jobs
	return ctx
}

// sleepExperiment runs shards sleeping d each through ctx.Parallel — the
// exact shape every sharded experiment has, with a controlled shard
// duration so promptness bounds are meaningful in CI.
func sleepExperiment(id string, shards int, d time.Duration, ran *atomic.Int64) Experiment {
	return Experiment{
		ID:    id,
		Title: "synthetic sharded sleeper",
		Run: func(ctx *Context) (*Result, error) {
			ctx.Parallel(shards, func(i int) {
				if ran != nil {
					ran.Add(1)
				}
				time.Sleep(d)
			})
			return &Result{}, nil
		},
	}
}

// settleGoroutines waits for the goroutine count to drop back to at most
// base+slack, failing the test if it never does (a leaked worker).
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancellation: %d running, started with %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelMidExperiment proves a cancelled run returns context.Canceled
// within about one trial shard, at -jobs 1 and 4, without leaking
// goroutines. The shard duration is 10ms, so the generous 3s bound is
// hundreds of shards away from a run that ignores cancellation (the full
// task list would take over 30s serially).
func TestCancelMidExperiment(t *testing.T) {
	const (
		shards   = 150
		shardDur = 10 * time.Millisecond
	)
	for _, jobs := range []int{1, 4} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			base := runtime.NumGoroutine()
			ctx := testContext(jobs)
			cctx, cancel := context.WithCancel(context.Background())
			ctx.Ctx = cctx
			var ran atomic.Int64
			list := []Experiment{
				sleepExperiment("sleep-a", shards, shardDur, &ran),
				sleepExperiment("sleep-b", shards, shardDur, &ran),
			}
			go func() {
				time.Sleep(40 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := runExperiments(ctx, list)
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if elapsed > 3*time.Second {
				t.Fatalf("cancellation took %v; want well under one run (shards are %v)", elapsed, shardDur)
			}
			if n := ran.Load(); n >= int64(2*shards) {
				t.Fatalf("all %d shards ran despite cancellation", n)
			}
			settleGoroutines(t, base)
		})
	}
}

// TestCancelBeforeStart proves a pre-cancelled context starts no work at
// all: RunAll over the full registry must return context.Canceled without
// simulating anything.
func TestCancelBeforeStart(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			ctx := testContext(jobs)
			cctx, cancel := context.WithCancel(context.Background())
			cancel()
			ctx.Ctx = cctx
			start := time.Now()
			_, err := RunAll(ctx)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Fatalf("pre-cancelled RunAll took %v; it must not simulate", elapsed)
			}
		})
	}
}

// TestDeadlinePropagates proves per-job deadlines surface as
// context.DeadlineExceeded — what the daemon's job-timeout path relies on.
func TestDeadlinePropagates(t *testing.T) {
	ctx := testContext(4)
	cctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	ctx.Ctx = cctx
	_, err := runExperiments(ctx, []Experiment{sleepExperiment("sleep", 500, 5*time.Millisecond, nil)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestUnguardedParallelNeverPanics pins the library-facing contract: on a
// hand-built context (no engine, no runGuarded recover) a cancelled
// Parallel stops early and returns instead of panicking into caller code.
func TestUnguardedParallelNeverPanics(t *testing.T) {
	ctx := testContext(1)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx.Ctx = cctx
	calls := 0
	ctx.Parallel(10, func(i int) { calls++ })
	if calls != 0 {
		t.Fatalf("pre-cancelled unguarded Parallel ran %d shards; want 0", calls)
	}
}

// TestShardPanicIsIsolated proves a panic inside a trial shard — on
// whichever goroutine the engine scheduled it — fails that task with an
// error instead of killing the process, at both job counts. This is the
// panic-isolation property the daemon's workers depend on.
func TestShardPanicIsIsolated(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			ctx := testContext(jobs)
			bomb := Experiment{
				ID:    "bomb",
				Title: "panics in shard 3",
				Run: func(ctx *Context) (*Result, error) {
					ctx.Parallel(8, func(i int) {
						if i == 3 {
							panic("boom")
						}
					})
					return &Result{}, nil
				},
			}
			_, err := runExperiments(ctx, []Experiment{bomb})
			if err == nil || !strings.Contains(err.Error(), "boom") {
				t.Fatalf("want shard panic surfaced as error, got %v", err)
			}
		})
	}
}

// TestFailfCarriesExperimentAndPhase pins the structured-failure format:
// a failf abort surfaces as "experiment <id>: <phase>: <cause>" with the
// cause preserved for errors.Is.
func TestFailfCarriesExperimentAndPhase(t *testing.T) {
	cause := errors.New("out of pages")
	ctx := testContext(1)
	e := Experiment{
		ID:    "alloc-fail",
		Title: "fails during setup",
		Run: func(ctx *Context) (*Result, error) {
			failf("alloc-fail", "alloc anchor page", cause)
			return &Result{}, nil
		},
	}
	_, err := runExperiments(ctx, []Experiment{e})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("cause not preserved: %v", err)
	}
	want := "experiment alloc-fail: alloc anchor page: out of pages"
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
	if strings.Contains(err.Error(), "panic:") {
		t.Fatalf("failf must not read as a panic: %v", err)
	}
}
