package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometryValidation(t *testing.T) {
	if _, err := NewGeometry(3, 1024); err == nil {
		t.Error("slices=3 should fail")
	}
	if _, err := NewGeometry(4, 1000); err == nil {
		t.Error("setsPerSlice=1000 should fail")
	}
	if _, err := NewGeometry(0, 1024); err == nil {
		t.Error("slices=0 should fail")
	}
	if _, err := NewGeometry(16, 1024); err == nil {
		t.Error("16 slices (4 bits) should exceed supported mask count")
	}
	if _, err := NewGeometry(4, 2048); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
}

func TestGeometryRanges(t *testing.T) {
	g := MustGeometry(4, 2048)
	f := func(raw uint64) bool {
		la := LineAddr(raw)
		s := g.Slice(la)
		set := g.Set(la)
		return s >= 0 && s < 4 && set >= 0 && set < 2048
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometrySliceBalance(t *testing.T) {
	// The hash must spread a dense physical region roughly evenly.
	g := MustGeometry(4, 2048)
	counts := make([]int, 4)
	const n = 1 << 16
	for i := 0; i < n; i++ {
		counts[g.Slice(LineAddr(i))]++
	}
	for s, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("slice %d holds %.1f%% of lines; want ≈25%%", s, 100*frac)
		}
	}
}

func TestGeometrySingleSlice(t *testing.T) {
	g := MustGeometry(1, 1024)
	for i := 0; i < 1000; i++ {
		if g.Slice(LineAddr(i*977)) != 0 {
			t.Fatal("single-slice geometry must always return slice 0")
		}
	}
}

func TestCongruent(t *testing.T) {
	g := MustGeometry(4, 2048)
	a := LineAddr(0x12345)
	if !g.Congruent(a, a) {
		t.Fatal("a line must be congruent with itself")
	}
	// A line differing only in set bits is never congruent.
	b := a ^ 1
	if g.Congruent(a, b) {
		t.Fatal("different set index reported congruent")
	}
	// Find a genuinely congruent pair by search and double-check it.
	var found bool
	for i := uint64(1); i < 1<<20; i++ {
		c := a + LineAddr(i*2048) // same set bits by construction
		if g.Slice(c) == g.Slice(a) {
			if !g.Congruent(a, c) {
				t.Fatal("Congruent disagrees with Slice/Set")
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no congruent line found in 1M candidates; hash is degenerate")
	}
}

func TestPageKnownSetBits(t *testing.T) {
	g := MustGeometry(4, 2048) // 11 set bits, page offset fixes 6
	if got := g.PageKnownSetBits(); got != 6 {
		t.Errorf("PageKnownSetBits = %d, want 6", got)
	}
	small := MustGeometry(1, 16) // 4 set bits, all page-known
	if got := small.PageKnownSetBits(); got != 4 {
		t.Errorf("PageKnownSetBits = %d, want 4", got)
	}
}
