package leakyway

import "fmt"

// The Example functions double as runnable documentation: their outputs are
// deterministic for the seeds used, so `go test` verifies them.

func ExampleRunNTPNTP() {
	plat := Skylake()
	cfg := DefaultChannelConfig(plat)
	cfg.Interval = 2000
	cfg.NoisePeriod = 0

	m := MustNewMachine(plat, 1<<30, 1)
	report, received := RunNTPNTP(m, cfg, BytesToBits([]byte("leak")))

	fmt.Printf("%s (%d bit errors)\n", BitsToBytes(received), report.Errors)
	// Output: leak (0 bit errors)
}

func ExampleRunKASLR() {
	res := RunKASLR(Skylake(), KASLRConfig{Slots: 64, Probes: 6}, 7)
	fmt.Printf("recovered == true slot: %v\n", res.RecoveredSlot == res.TrueSlot)
	// Output: recovered == true slot: true
}

func ExampleRunRefresh() {
	res := RunRefresh(Skylake(), PrefetchRefreshV2, RefreshConfig{Iterations: 64}, 3)
	fmt.Printf("accuracy: %.0f%%, revert ops: %d flush / %d DRAM / %d LLC\n",
		100*res.Accuracy, res.Revert.Flushes, res.Revert.DRAMAccesses, res.Revert.LLCAccesses)
	// Output: accuracy: 100%, revert ops: 1 flush / 1 DRAM / 0 LLC
}

func ExampleCalibrate() {
	m := MustNewMachine(Skylake(), 1<<26, 2)
	m.Spawn("attacker", 0, nil, func(c *Core) {
		th := Calibrate(c, 48)
		buf := c.Alloc(PageSize)
		c.Flush(buf)
		cold := c.TimedLoad(buf) // DRAM
		warm := c.TimedLoad(buf) // L1
		fmt.Printf("cold is miss: %v, warm is miss: %v\n", th.IsMiss(cold), th.IsMiss(warm))
	})
	m.Run()
	// Output: cold is miss: true, warm is miss: false
}

func ExampleEncodeRepetition() {
	bits := []bool{true, false}
	enc := EncodeRepetition(bits, 3)
	enc[0] = false // one corrupted bit
	dec := DecodeRepetition(enc, 3)
	fmt.Println(dec[0], dec[1])
	// Output: true false
}
