package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Parse decodes and validates one template. The filename selects the
// format (.json is JSON, everything else the YAML subset) and prefixes
// every error. On any error the returned Spec is nil — a template either
// loads completely or not at all.
func Parse(data []byte, filename string) (*Spec, error) {
	var root any
	var err error
	if strings.HasSuffix(filename, ".json") {
		root, err = parseJSON(data, filename)
	} else {
		root, err = parseYAML(data, filename)
	}
	if err != nil {
		return nil, err
	}
	d := &dec{file: filename}
	spec := decodeSpec(d, root)
	if d.err != nil {
		return nil, d.err
	}
	if err := spec.Validate(filename); err != nil {
		return nil, err
	}
	return spec, nil
}

// parseJSON decodes JSON into the same tree shapes parseYAML produces
// (integral numbers become int64, others float64).
func parseJSON(data []byte, filename string) (any, error) {
	decoder := json.NewDecoder(bytes.NewReader(data))
	decoder.UseNumber()
	var root any
	if err := decoder.Decode(&root); err != nil {
		return nil, fmt.Errorf("%s: %v", filename, err)
	}
	// A second value (or trailing garbage) is a malformed template.
	if decoder.More() {
		return nil, fmt.Errorf("%s: trailing data after the JSON document", filename)
	}
	return normalizeJSON(root), nil
}

func normalizeJSON(v any) any {
	switch t := v.(type) {
	case map[string]any:
		for k, e := range t {
			t[k] = normalizeJSON(e)
		}
		return t
	case []any:
		for i, e := range t {
			t[i] = normalizeJSON(e)
		}
		return t
	case json.Number:
		if i, err := t.Int64(); err == nil {
			return i
		}
		f, _ := t.Float64()
		return f
	}
	return v
}

// Load parses one template file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data, path)
}

// templateExts are the file extensions LoadPath picks up from a directory.
var templateExts = map[string]bool{".yaml": true, ".yml": true, ".json": true}

// LoadPath loads a template file, or every template in a directory
// (sorted by name, so run order is stable). Directory entries with other
// extensions are ignored; an empty directory is an error. Duplicate
// scenario IDs across a pack are rejected — they would collide in
// metrics, trace labels and seed derivation.
func LoadPath(path string) ([]*Spec, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if !info.IsDir() {
		spec, err := Load(path)
		if err != nil {
			return nil, err
		}
		return []*Spec{spec}, nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && templateExts[filepath.Ext(e.Name())] {
			files = append(files, filepath.Join(path, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("scenario: no templates (*.yaml, *.yml, *.json) in %s", path)
	}
	sort.Strings(files)
	specs := make([]*Spec, 0, len(files))
	byID := map[string]string{}
	for _, f := range files {
		spec, err := Load(f)
		if err != nil {
			return nil, err
		}
		if prev, dup := byID[spec.ID]; dup {
			return nil, fmt.Errorf("%s: id: duplicate scenario id %q (also defined in %s)", f, spec.ID, prev)
		}
		byID[spec.ID] = f
		specs = append(specs, spec)
	}
	return specs, nil
}
