package experiments

import (
	"fmt"

	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/policy"
	"leakyway/internal/sim"
	"leakyway/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "pollution",
		Title: "Extension — the countermeasure's performance cost (Section VI-D)",
		Paper: "stock insertion bounds PREFETCHNTA pollution to 1/w of a set; the hardened policy (load=1, NTA=2) gives up that guarantee",
		Run:   runPollution,
	})
}

// runPollution measures a cache-resident worker's load latency while a
// co-running streamer prefetches a huge non-temporal buffer through the
// LLC. Under the stock policy the streamer's NTA lines are always the
// eviction candidates, so they churn one way per set and the worker keeps
// its working set. Under the Section VI-D countermeasure the streamer's
// lines (age 2) outrank the worker's well-aged hot lines, and the worker
// starts missing — the performance regression the paper warns the
// mitigation costs.
func runPollution(ctx *Context) (*Result, error) {
	res := &Result{}
	rows := [][]string{}
	variants := []struct {
		name string
		key  string
		pol  func() policy.Policy
	}{
		{"stock Intel quad-age (NTA pollution ≤ 1 way)", "stock", func() policy.Policy { return policy.NewQuadAge() }},
		{"countermeasure (load=1, NTA=2)", "countermeasure", func() policy.Policy { return policy.NewQuadAgeCountermeasure() }},
	}
	// The worker/streamer interleaving is sensitive to the frame shuffle,
	// so each policy averages several independent machines; the variant ×
	// trial grid shards across free workers.
	const trialsPer = 3
	type cellOut struct {
		mean, hitRate float64
	}
	cells := make([]cellOut, len(variants)*trialsPer)
	ctx.Parallel(len(cells), func(cell int) {
		variant := variants[cell/trialsPer]
		seed := ctx.SeedFor(variant.key, fmt.Sprint(cell%trialsPer))
		// A scaled-down hierarchy keeps the run fast while preserving
		// the level ratios that matter: the worker's hot set must
		// overflow the private caches yet fit the LLC with ways to
		// spare. The interaction is per-set, so this loses no
		// generality.
		p := ctx.Platforms[0]
		p.LLCPolicy = variant.pol()
		p.L2Sets = 64 // 16 KiB L2
		p.LLCSlices = 1
		p.LLCSetsPerSlice = 256 // 256 KiB LLC
		m := sim.MustNewMachine(p, 1<<30, seed)

		// The streamer NTA-walks a buffer much larger than the LLC in
		// column-major order — the strided pattern of a non-temporal
		// matrix walk — so each LLC set sees short bursts of congruent
		// prefetches. Under the stock policy each burst churns the one
		// candidate way; under the countermeasure the first storm of a
		// burst ages the worker's lines and the rest of the burst
		// evicts them.
		const burst = 32                       // 2x the LLC associativity: the stream self-evicts
		rowBytes := uint64(256 * mem.LineSize) // one line per LLC set
		m.SpawnDaemon("streamer", 1, nil, func(c *sim.Core) {
			buf := c.Alloc(burst * rowBytes)
			for {
				for col := uint64(0); col < rowBytes; col += mem.LineSize {
					for row := uint64(0); row < burst; row++ {
						c.PrefetchNTA(buf + mem.VAddr(row*rowBytes+col))
					}
				}
			}
		})

		// The worker loops over a hot set filling ~10 of the 16 ways of
		// every LLC set — comfortably cache-resident when undisturbed.
		var lat []int64
		var hot []float64
		m.Spawn("worker", 0, nil, func(c *sim.Core) {
			hotBytes := uint64(10 * 256 * mem.LineSize)
			buf := c.Alloc(hotBytes)
			// Sample at least one full pass over the hot set: fewer
			// samples can miss the streamer's bursts entirely and report
			// a spuriously clean countermeasure run.
			warm := ctx.Trials(6000)
			if min := int(hotBytes / mem.LineSize); warm < min {
				warm = min
			}
			for pass := 0; pass < 2; pass++ {
				for off := uint64(0); off < hotBytes; off += mem.LineSize {
					c.Load(buf + mem.VAddr(off))
				}
			}
			n := 0
			for n < warm {
				for off := uint64(0); off < hotBytes && n < warm; off += mem.LineSize {
					r := c.Load(buf + mem.VAddr(off))
					lat = append(lat, r.Latency)
					if r.Level != hier.LevelMem {
						hot = append(hot, 1)
					} else {
						hot = append(hot, 0)
					}
					n++
				}
			}
		})
		m.Run()

		cells[cell].mean = stats.Mean(lat)
		hitRate := 0.0
		for _, h := range hot {
			hitRate += h
		}
		cells[cell].hitRate = hitRate / float64(len(hot))
	})
	for vi, variant := range variants {
		var mean, hitRate float64
		for t := 0; t < trialsPer; t++ {
			mean += cells[vi*trialsPer+t].mean
			hitRate += cells[vi*trialsPer+t].hitRate
		}
		mean /= trialsPer
		hitRate /= trialsPer
		rows = append(rows, []string{
			variant.name,
			fmt.Sprintf("%.1f cycles", mean),
			fmt.Sprintf("%.1f%%", 100*hitRate),
		})
		res.Metric(variant.key+"_worker_latency", mean)
		res.Metric(variant.key+"_worker_hitrate", hitRate)
	}
	renderTable(ctx, []string{"LLC insertion policy", "worker mean load latency", "worker cache-hit rate"}, rows)
	ctx.Printf("the mitigation trades the channel for throughput: victims of non-temporal streams\n")
	ctx.Printf("lose the 1/w pollution bound the stock policy guarantees\n")
	return res, nil
}
