package service

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"leakyway/internal/experiments"
	"leakyway/internal/scenario"
	"leakyway/internal/telemetry"
)

// sseEvent is one parsed server-sent event frame.
type sseEvent struct {
	name, data string
}

// readEvent parses frames of the form "event: x\ndata: y\n\n".
func readEvent(br *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if ev.name != "" || ev.data != "" {
				return ev, nil
			}
			continue
		}
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			ev.name = v
		}
		if v, ok := strings.CutPrefix(line, "data: "); ok {
			ev.data = v
		}
	}
}

// openStream GETs the events endpoint and returns a frame reader plus a
// cancel that simulates client disconnect.
func openStream(t *testing.T, base, id string) (*bufio.Reader, context.CancelFunc, *http.Response) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatalf("open SSE stream: %v", err)
	}
	if resp.StatusCode != 200 {
		cancel()
		t.Fatalf("SSE stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		cancel()
		t.Fatalf("SSE content type %q", ct)
	}
	return bufio.NewReader(resp.Body), cancel, resp
}

// TestSSELiveStreamAndReplay drives a job through two runner-published
// phases while a subscriber watches live, then checks a late subscriber
// gets the same history replayed from the stored artifact.
func TestSSELiveStreamAndReplay(t *testing.T) {
	started := make(chan struct{})
	release1 := make(chan struct{})
	release2 := make(chan struct{})
	s := newTestServer(t, func(c *Config) {
		c.ProgressInterval = 5 * time.Millisecond
		c.Runner = func(ctx context.Context, sub Submission, spec *scenario.Spec, prog *telemetry.Progress) (*Result, error) {
			prog.SetPhasesTotal(2)
			prog.StartPhase("alpha")
			close(started)
			<-release1
			prog.EndPhase()
			prog.StartPhase("beta")
			<-release2
			prog.EndPhase()
			return &Result{Report: []byte("r"), Metrics: []byte("{}\n")}, nil
		}
	})
	defer s.Drain()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	j, err := s.Submit(Submission{Template: tmplFor("sse"), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	br, cancel, resp := openStream(t, srv.URL, j.ID)
	defer cancel()
	defer resp.Body.Close()

	// The stream opens with an immediate frame of the current state.
	ev, err := readEvent(br)
	if err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if ev.name != "progress" || !strings.Contains(ev.data, `"phase":"alpha"`) {
		t.Fatalf("first frame %+v, want progress in phase alpha", ev)
	}

	// Advance the job; a changed snapshot must produce a new frame.
	close(release1)
	for {
		ev, err = readEvent(br)
		if err != nil {
			t.Fatalf("mid-run frame: %v", err)
		}
		if strings.Contains(ev.data, `"phase":"beta"`) {
			break
		}
	}

	// Finish the job; the stream must end with a done frame and EOF.
	close(release2)
	for {
		ev, err = readEvent(br)
		if err != nil {
			t.Fatalf("awaiting done frame: %v", err)
		}
		if ev.name == "done" {
			break
		}
	}
	if !strings.Contains(ev.data, `"status":"done"`) {
		t.Fatalf("done frame %q missing terminal status", ev.data)
	}
	if _, err := readEvent(br); err != io.EOF {
		t.Fatalf("stream did not close after done: %v", err)
	}

	// Late subscriber: the same job replays progress from the stored
	// artifact, then the done frame.
	br2, cancel2, resp2 := openStream(t, srv.URL, j.ID)
	defer cancel2()
	defer resp2.Body.Close()
	progressFrames := 0
	for {
		ev, err := readEvent(br2)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if ev.name == "progress" {
			progressFrames++
			continue
		}
		if ev.name == "done" {
			if progressFrames == 0 {
				t.Fatalf("replay produced no progress frames before done")
			}
			if !strings.Contains(ev.data, `"status":"done"`) {
				t.Fatalf("replay done frame %q", ev.data)
			}
			break
		}
	}

	// The progress artifact is fetchable directly and ends at 2/2 phases.
	areq, err := http.Get(srv.URL + "/v1/jobs/" + j.ID + "/artifacts/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer areq.Body.Close()
	if areq.StatusCode != 200 {
		t.Fatalf("progress artifact status %d", areq.StatusCode)
	}
	if ct := areq.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("progress artifact content type %q", ct)
	}
	body, _ := io.ReadAll(areq.Body)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if !strings.Contains(lines[len(lines)-1], `"phases_done":2`) {
		t.Fatalf("final progress line %q does not show 2 completed phases", lines[len(lines)-1])
	}

	// Unknown jobs get a plain 404, not a stream.
	if r404, err := http.Get(srv.URL + "/v1/jobs/nope/events"); err != nil || r404.StatusCode != 404 {
		t.Fatalf("events for unknown job: %v %d", err, r404.StatusCode)
	}
}

// TestSSEClientDisconnectFreesStream cancels a live subscription and
// checks the handler goroutine exits (subscriber gauge back to zero) —
// the no-leak property.
func TestSSEClientDisconnectFreesStream(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s := newTestServer(t, func(c *Config) {
		c.ProgressInterval = 5 * time.Millisecond
		c.Runner = func(ctx context.Context, sub Submission, spec *scenario.Spec, prog *telemetry.Progress) (*Result, error) {
			prog.StartPhase("held")
			close(started)
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &Result{Report: []byte("r"), Metrics: []byte("{}\n")}, nil
		}
	})
	defer s.Drain()
	defer close(release)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	j, err := s.Submit(Submission{Template: tmplFor("dc"), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	br, cancel, resp := openStream(t, srv.URL, j.ID)
	defer resp.Body.Close()
	if _, err := readEvent(br); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if got := s.met.sseSubs.Value(); got != 1 {
		t.Fatalf("subscriber gauge %v with one open stream, want 1", got)
	}

	cancel() // client goes away mid-run
	deadline := time.Now().Add(5 * time.Second)
	for s.met.sseSubs.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber gauge stuck at %v after disconnect", s.met.sseSubs.Value())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMetricszExposition scrapes /metricsz after a little traffic and
// pins the exposition-format essentials: content type, HELP/TYPE
// comments, labeled counters and a complete histogram.
func TestMetricszExposition(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Drain()
	h := s.Handler()

	j, err := s.Submit(Submission{Template: tmplFor("mx"), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, j.ID, StatusDone)
	if _, err := s.Submit(Submission{Template: tmplFor("mx"), Seed: 1}); err != nil {
		t.Fatal(err) // cache hit
	}

	w := doJSON(h, "GET", "/metricsz", nil)
	if w.Code != 200 {
		t.Fatalf("metricsz: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("metricsz content type %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE leakywayd_jobs_total counter",
		"# HELP leakywayd_jobs_total",
		`leakywayd_jobs_total{event="accepted"} 2`,
		`leakywayd_store_lookups_total{result="hit"} 1`,
		`leakywayd_store_lookups_total{result="miss"} 1`,
		"# TYPE leakywayd_queue_wait_seconds histogram",
		`leakywayd_queue_wait_seconds_bucket{le="+Inf"} 1`,
		"leakywayd_queue_wait_seconds_count 1",
		`leakywayd_job_duration_seconds_count{status="done"} 1`,
		"# TYPE leakywayd_wal_fsync_seconds histogram",
		"leakywayd_queue_depth 0",
		"leakywayd_workers 2",
		"leakywayd_draining 0",
		fmt.Sprintf(`leakywayd_build_info{engine=%q} 1`, experiments.EngineVersion),
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metricsz missing %q in:\n%s", want, body)
		}
	}
	// WAL fsyncs happened (accept + done entries at minimum).
	if !strings.Contains(body, "leakywayd_wal_fsync_seconds_count") {
		t.Fatalf("metricsz missing wal fsync count:\n%s", body)
	}

	// Every sample line is NAME{labels} VALUE or NAME VALUE — no torn
	// lines, no stray text.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 || fields[0] == "" || fields[1] == "" {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

// TestStatszRaceClean hammers the stats and metrics read paths while
// jobs flow — the -race gate for the registry-backed counter reads that
// replaced the old ad-hoc struct.
func TestStatszRaceClean(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				doJSON(h, "GET", "/v1/statsz", nil)
				doJSON(h, "GET", "/metricsz", nil)
				s.Stats()
			}
		}()
	}
	for i := 0; i < 30; i++ {
		if _, err := s.Submit(Submission{Template: tmplFor(fmt.Sprintf("rc%d", i%5)), Seed: int64(i % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	stats := s.Stats()
	if stats["accepted"] != 30 {
		t.Fatalf("accepted %d, want 30", stats["accepted"])
	}
	if stats["completed"] != 30 {
		t.Fatalf("completed %d, want 30", stats["completed"])
	}
}
