# Build/verify entry points. `make verify` is the tier-1 gate: build,
# vet, formatting, tests, the race detector over the whole module (the
# parallel experiment engine must stay clean under -race), and a short
# fuzz smoke over the ARQ frame decoders.

GO ?= go

.PHONY: all build vet fmt-check staticcheck test race fuzz-smoke trace-smoke template-validate daemon-smoke chaos-smoke verify bench bench-jobs bench-check bench-baseline cover clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if it prints anything.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# staticcheck when the host has it; skipped (not failed) otherwise, so
# verify works on boxes where the tool cannot be installed. CI runs
# `make verify STATICCHECK_MODE=strict`, which turns a missing binary into
# a hard failure so the linter can never be silently skipped there.
STATICCHECK_MODE ?= auto
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ "$(STATICCHECK_MODE)" = "strict" ]; then \
		echo "staticcheck not installed but STATICCHECK_MODE=strict"; exit 1; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# Short fuzz runs over the wire-format decoders, the scenario template
# loader and the batch-kernel equivalence property (go test takes one
# -fuzz pattern per invocation, hence one command per target).
fuzz-smoke:
	$(GO) test ./internal/channel -run '^$$' -fuzz FuzzFrameDecode -fuzztime 5s
	$(GO) test ./internal/channel -run '^$$' -fuzz FuzzAckDecode -fuzztime 5s
	$(GO) test ./internal/scenario -run '^$$' -fuzz FuzzLoadScenario -fuzztime 5s
	$(GO) test ./internal/sim -run '^$$' -fuzz FuzzBatchScalarEquivalence -fuzztime 5s

# Shipped-template gate: every template under templates/ must load through
# the strict parser/validator via the real CLI entry point.
template-validate:
	$(GO) run ./cmd/leakyway -template templates/ validate

# Traced-run determinism gate: the same traced fig8 run at -jobs 1 and
# -jobs 8 must export byte-identical traces. Filtered to the protocol-level
# subsystems to keep the files small.
trace-smoke:
	$(GO) build -o /tmp/leakyway-smoke ./cmd/leakyway
	/tmp/leakyway-smoke -quick -jobs 1 -trace /tmp/leakyway-trace-j1.jsonl \
		-trace-filter channel,sim,fault run fig8 > /dev/null
	/tmp/leakyway-smoke -quick -jobs 8 -trace /tmp/leakyway-trace-j8.jsonl \
		-trace-filter channel,sim,fault run fig8 > /dev/null
	cmp /tmp/leakyway-trace-j1.jsonl /tmp/leakyway-trace-j8.jsonl
	@echo "trace-smoke: traces byte-identical across -jobs 1/8"

# Daemon robustness gate: drives the real leakywayd binary over HTTP and
# signals — cache-hit resubmission, SIGTERM drain (exit 0, accepted jobs
# completed), and SIGKILL crash-recovery with byte-identical metrics.
daemon-smoke:
	$(GO) build -o /tmp/leakywayd-smoke ./cmd/leakywayd
	$(GO) run ./cmd/daemonsmoke -bin /tmp/leakywayd-smoke

# Disk-chaos gate: the same daemon binary under injected journal-fsync
# failure and a tiny store quota — degraded mode must engage (503 +
# Retry-After, healthz degraded(reason)) and clear once the fault burns
# out, quota eviction must hold the store under budget with every job
# completing, and the daemon must still drain cleanly.
chaos-smoke:
	$(GO) build -o /tmp/leakywayd-smoke ./cmd/leakywayd
	$(GO) run ./cmd/daemonsmoke -bin /tmp/leakywayd-smoke -chaos

# The slow end-to-end daemon gates ride verify by default; CI splits them
# into their own parallel job with `make verify VERIFY_SMOKES=`.
VERIFY_SMOKES ?= daemon-smoke chaos-smoke
verify: build vet fmt-check staticcheck test race fuzz-smoke trace-smoke template-validate $(VERIFY_SMOKES)

# Full benchmark sweep (quick-mode trial counts).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Engine scaling curve: the full suite at 1/2/4/8 workers.
bench-jobs:
	$(GO) test -bench 'BenchmarkRunAllJobs' -benchtime 3x -run '^$$' .

# Perf-regression gate: run the pinned benchmark set and compare ns/op and
# allocs/op against the committed BENCH.json baselines (±20%, with
# re-measurement of gates that fail on a noisy first sample). See
# cmd/benchcheck for the calibration and retry details.
bench-check:
	$(GO) run ./cmd/benchcheck

# Re-pin the BENCH.json baselines from this host's measurements.
bench-baseline:
	$(GO) run ./cmd/benchcheck -update

# Coverage floor over the simulation core: fail below $(COVER_FLOOR)%
# of statements across internal/... . The profile is left at cover.out
# for `go tool cover -html` or CI artifact upload.
COVER_FLOOR ?= 75
cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	@total="$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage below floor"; exit 1; }

clean:
	$(GO) clean ./...
