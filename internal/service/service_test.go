package service

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"leakyway/internal/scenario"
	"leakyway/internal/telemetry"
)

// testLogger routes the server's structured logs into the test log.
type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t: t}, nil))
}

// tmplFor renders a distinct minimal valid template per id.
func tmplFor(id string) string {
	return fmt.Sprintf(`id: %s
title: Test scenario %s
kind: statewalk
statewalk:
  message: "10"
  calibrate_samples: 8
  receiver_ready: 30000
  phase_step: 5000
`, id, id)
}

// stubRunner returns a deterministic Runner that sleeps delay (honoring
// the context) and counts its calls.
func stubRunner(delay time.Duration, calls *int64, mu *sync.Mutex) Runner {
	return func(ctx context.Context, sub Submission, spec *scenario.Spec, _ *telemetry.Progress) (*Result, error) {
		if mu != nil {
			mu.Lock()
			*calls++
			mu.Unlock()
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		metrics := fmt.Sprintf("{\n  \"%s/stub_metric\": %d\n}\n", spec.ID, sub.Seed)
		return &Result{
			Report:  []byte("report for " + spec.ID + "\n"),
			Metrics: []byte(metrics),
		}, nil
	}
}

// newTestServer builds a server over a temp dir with a fast stub runner;
// mutate adjusts the config before New.
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		DataDir:    t.TempDir(),
		Workers:    2,
		QueueCap:   16,
		JobTimeout: 30 * time.Second,
		MaxRetries: -1,
		Runner:     stubRunner(0, nil, nil),
		Logger:     testLogger(t),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// waitStatus polls until job id reaches status (or a terminal status).
func waitStatus(t *testing.T, s *Server, id, status string) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := s.snapshotJob(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if snap.Status == status {
			return snap
		}
		if snap.terminal() {
			t.Fatalf("job %s reached %q (err %q), want %q", id, snap.Status, snap.Error, status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, status)
	return Job{}
}

func TestSubmitRunsAndCachesResult(t *testing.T) {
	var calls int64
	var mu sync.Mutex
	s := newTestServer(t, func(c *Config) { c.Runner = stubRunner(0, &calls, &mu) })
	defer s.Drain()

	sub := Submission{Template: tmplFor("demo"), Seed: 42}
	j1, err := s.Submit(sub)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j1.CacheHit {
		t.Fatalf("first submission must not be a cache hit")
	}
	waitStatus(t, s, j1.ID, StatusDone)

	m1, err := s.store.Artifact(j1.Key, "metrics")
	if err != nil {
		t.Fatalf("metrics artifact: %v", err)
	}
	if !strings.Contains(string(m1), "demo/stub_metric") {
		t.Fatalf("metrics artifact missing stub metric: %q", m1)
	}

	// Identical resubmission: served from the store, runner not re-invoked.
	j2, err := s.Submit(sub)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !j2.CacheHit {
		t.Fatalf("resubmission of an identical job must be a cache hit")
	}
	if j2.Key != j1.Key {
		t.Fatalf("cache keys differ: %s vs %s", j1.Key, j2.Key)
	}
	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 1 {
		t.Fatalf("runner ran %d times, want 1", got)
	}

	// A different surface form of the same template keys identically.
	spec, err := scenario.Parse([]byte(sub.Template), "t.yaml")
	if err != nil {
		t.Fatal(err)
	}
	reform := Submission{Template: string(scenario.CanonicalBytes(spec)), Seed: 42}
	j3, err := s.Submit(reform)
	if err != nil {
		t.Fatalf("reformatted submit: %v", err)
	}
	if !j3.CacheHit {
		t.Fatalf("canonical-form resubmission must hit the cache (key %s vs %s)", j3.Key, j1.Key)
	}
}

func TestSingleFlightCoalescesConcurrentDuplicates(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var calls int64
	var mu sync.Mutex
	s := newTestServer(t, func(c *Config) {
		c.Runner = func(ctx context.Context, sub Submission, spec *scenario.Spec, _ *telemetry.Progress) (*Result, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &Result{Report: []byte("r"), Metrics: []byte("{}\n")}, nil
		}
	})
	defer s.Drain()

	sub := Submission{Template: tmplFor("dup"), Seed: 7}
	j1, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the execution is running; a duplicate must attach, not queue

	j2, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Coalesced {
		t.Fatalf("duplicate of an in-flight key must coalesce")
	}
	if j2.CacheHit {
		t.Fatalf("in-flight duplicate is not a cache hit")
	}
	close(release)
	waitStatus(t, s, j1.ID, StatusDone)
	waitStatus(t, s, j2.ID, StatusDone)
	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 1 {
		t.Fatalf("coalesced duplicate ran the runner %d times, want 1", got)
	}
}

func TestBackpressureRejectsWhenQueueFull(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueCap = 2
		c.Runner = func(ctx context.Context, sub Submission, spec *scenario.Spec, _ *telemetry.Progress) (*Result, error) {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &Result{Report: []byte("r"), Metrics: []byte("{}\n")}, nil
		}
	})
	defer func() {
		close(release)
		s.Drain()
	}()

	if _, err := s.Submit(Submission{Template: tmplFor("bp0"), Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-started // worker is busy; the queue is empty again

	for i := 1; i <= 2; i++ {
		if _, err := s.Submit(Submission{Template: tmplFor(fmt.Sprintf("bp%d", i)), Seed: 1}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if got := s.queueDepth(); got != 2 {
		t.Fatalf("queue depth %d, want 2", got)
	}

	_, err := s.Submit(Submission{Template: tmplFor("bp3"), Seed: 1})
	se, ok := err.(*submitError)
	if !ok {
		t.Fatalf("overflow submit: got err %v, want *submitError", err)
	}
	if se.status != 429 {
		t.Fatalf("overflow status %d, want 429", se.status)
	}
	if se.retryAfter <= 0 {
		t.Fatalf("429 must carry a Retry-After hint, got %d", se.retryAfter)
	}
}

func TestDrainFinishesAllAcceptedJobs(t *testing.T) {
	var calls int64
	var mu sync.Mutex
	s := newTestServer(t, func(c *Config) {
		c.Workers = 2
		c.Runner = stubRunner(5*time.Millisecond, &calls, &mu)
	})

	var ids []string
	for i := 0; i < 8; i++ {
		j, err := s.Submit(Submission{Template: tmplFor(fmt.Sprintf("dr%d", i)), Seed: int64(i)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, j.ID)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, id := range ids {
		snap, ok := s.snapshotJob(id)
		if !ok {
			t.Fatalf("job %s lost across drain", id)
		}
		if snap.Status != StatusDone {
			t.Fatalf("job %s is %q after drain (err %q), want done", id, snap.Status, snap.Error)
		}
		if !s.store.Has(snap.Key) {
			t.Fatalf("job %s has no stored result after drain", id)
		}
	}
	// Draining servers refuse new work.
	if _, err := s.Submit(Submission{Template: tmplFor("late"), Seed: 1}); err == nil {
		t.Fatalf("submit after drain must fail")
	} else if se, ok := err.(*submitError); !ok || se.status != 503 {
		t.Fatalf("submit after drain: got %v, want 503", err)
	}
}

func TestKillRestartRecoversJournalledJobs(t *testing.T) {
	dir := t.TempDir()
	var calls int64
	var mu sync.Mutex

	// Server 1: stall long enough that the kill lands mid-attempt.
	cfg := Config{
		DataDir:    dir,
		Workers:    1,
		MaxRetries: -1,
		Stall:      time.Hour,
		Runner:     stubRunner(0, &calls, &mu),
		Logger:     testLogger(t),
	}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := Submission{Template: tmplFor("recov"), Seed: 99}
	j1, err := s1.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s1, j1.ID, StatusRunning)
	s1.Kill() // hard stop: no drain, no terminal journal entries

	mu.Lock()
	if calls != 0 {
		mu.Unlock()
		t.Fatalf("runner ran before the kill; stall did not hold")
	}
	mu.Unlock()

	// Server 2: same data dir, no stall. The journalled accept must be
	// recovered, re-run and completed under the SAME job ID.
	cfg.Stall = 0
	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := s2.met.recovered.Value(); got != 1 {
		t.Fatalf("recovered %d jobs, want 1", got)
	}
	snap := waitStatus(t, s2, j1.ID, StatusDone)
	recovered, err := s2.store.Artifact(snap.Key, "metrics")
	if err != nil {
		t.Fatalf("recovered metrics: %v", err)
	}
	if err := s2.Drain(); err != nil {
		t.Fatal(err)
	}

	// Reference: the same submission on a fresh server must produce
	// byte-identical metrics.
	ref := newTestServer(t, func(c *Config) { c.Runner = stubRunner(0, nil, nil) })
	jr, err := ref.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, ref, jr.ID, StatusDone)
	fresh, err := ref.store.Artifact(jr.Key, "metrics")
	if err != nil {
		t.Fatal(err)
	}
	ref.Drain()
	if !bytes.Equal(recovered, fresh) {
		t.Fatalf("recovered metrics differ from a fresh run:\n%q\nvs\n%q", recovered, fresh)
	}
	if jr.Key != snap.Key {
		t.Fatalf("cache key drifted across restart: %s vs %s", jr.Key, snap.Key)
	}
}

func TestRestartAfterCleanDrainRecoversNothing(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, MaxRetries: -1, Runner: stubRunner(0, nil, nil), Logger: testLogger(t)}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s1.Submit(Submission{Template: tmplFor("clean"), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s1, j.ID, StatusDone)
	if err := s1.Drain(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart after clean drain: %v", err)
	}
	defer s2.Drain()
	if got := s2.met.recovered.Value(); got != 0 {
		t.Fatalf("clean shutdown recovered %d jobs, want 0", got)
	}
	// The completed job is still visible and its artifacts still served.
	snap, ok := s2.snapshotJob(j.ID)
	if !ok || snap.Status != StatusDone {
		t.Fatalf("done job not preserved across clean restart: %+v ok=%v", snap, ok)
	}
	if _, err := s2.store.Artifact(snap.Key, "metrics"); err != nil {
		t.Fatalf("artifact lost across clean restart: %v", err)
	}
}

func TestCancelStopsRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Runner = func(ctx context.Context, sub Submission, spec *scenario.Spec, _ *telemetry.Progress) (*Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
	})
	defer s.Drain()

	j, err := s.Submit(Submission{Template: tmplFor("cx"), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	found, err := s.Cancel(j.ID)
	if !found || err != nil {
		t.Fatalf("Cancel: found=%v err=%v", found, err)
	}
	snap, _ := s.snapshotJob(j.ID)
	if snap.Status != StatusCanceled {
		t.Fatalf("status %q after cancel, want canceled", snap.Status)
	}
	// The worker must come free (the runner returned on ctx.Done).
	j2, err := s.Submit(Submission{Template: tmplFor("cx2"), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
}

// corruptStoredArtifact flips a byte in the stored metrics artifact.
func corruptStoredArtifact(t *testing.T, dataDir, key string) {
	t.Helper()
	path := filepath.Join(dataDir, "store", hexOf(key), "metrics.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
}

func TestRetriesThenFails(t *testing.T) {
	var calls int64
	var mu sync.Mutex
	s := newTestServer(t, func(c *Config) {
		c.MaxRetries = 2
		c.RetryBase = time.Millisecond
		c.Runner = func(ctx context.Context, sub Submission, spec *scenario.Spec, _ *telemetry.Progress) (*Result, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			return nil, fmt.Errorf("flaky failure")
		}
	})
	defer s.Drain()

	j, err := s.Submit(Submission{Template: tmplFor("fl"), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, _ := s.snapshotJob(j.ID)
		if snap.terminal() {
			if snap.Status != StatusFailed {
				t.Fatalf("status %q, want failed", snap.Status)
			}
			if !strings.Contains(snap.Error, "flaky failure") {
				t.Fatalf("error %q lost the cause", snap.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never terminal")
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 3 {
		t.Fatalf("runner ran %d times, want 3 (1 + 2 retries)", got)
	}
	if s.met.retries.Value() != 2 {
		t.Fatalf("retries counter %d, want 2", s.met.retries.Value())
	}
}

func TestRunnerPanicIsContainedAndFailsJob(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.RetryBase = time.Millisecond
		c.Runner = func(ctx context.Context, sub Submission, spec *scenario.Spec, _ *telemetry.Progress) (*Result, error) {
			panic("runner exploded")
		}
	})
	defer s.Drain()

	j, err := s.Submit(Submission{Template: tmplFor("pn"), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, _ := s.snapshotJob(j.ID)
		if snap.terminal() {
			if snap.Status != StatusFailed {
				t.Fatalf("status %q, want failed", snap.Status)
			}
			if !strings.Contains(snap.Error, "runner exploded") {
				t.Fatalf("error %q lost the panic value", snap.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never terminal")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s.met.panics.Value() == 0 {
		t.Fatalf("panic counter not incremented")
	}
	// The daemon is still alive and serving.
	j2, err := s.Submit(Submission{Template: tmplFor("pn"), Seed: 2})
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	_ = j2
}

func TestStoreSurvivesCorruptionSweep(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, MaxRetries: -1, Runner: stubRunner(0, nil, nil), Logger: testLogger(t)}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s1.Submit(Submission{Template: tmplFor("cor"), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitStatus(t, s1, j.ID, StatusDone)
	if err := s1.Drain(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the stored metrics; the restart sweep must drop the entry,
	// and a resubmission must re-run instead of serving the bad bytes.
	corruptStoredArtifact(t, dir, snap.Key)

	var calls int64
	var mu sync.Mutex
	cfg.Runner = stubRunner(0, &calls, &mu)
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	if s2.store.Has(snap.Key) {
		t.Fatalf("corrupt entry survived the integrity sweep")
	}
	j2, err := s2.Submit(Submission{Template: tmplFor("cor"), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if j2.CacheHit {
		t.Fatalf("corrupt entry served as a cache hit")
	}
	waitStatus(t, s2, j2.ID, StatusDone)
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("runner ran %d times after corruption, want 1", calls)
	}
}
