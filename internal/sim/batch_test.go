package sim

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"leakyway/internal/hier"
	"leakyway/internal/mem"
)

// batchTestConfig enables the hardware prefetchers so the equivalence
// trials cover the stream-table state the hierarchy reset must rewind.
func batchTestConfig() hier.Config {
	cfg := testConfig()
	cfg.HWPrefetch = hier.HWPrefetchConfig{AdjacentLine: true, Stream: true}
	return cfg
}

// equivalenceTrial is one Monte-Carlo trial with enough moving parts to
// expose any divergence between the scalar and batched kernels: two
// interacting agents with timed loads, non-temporal prefetches, flushes and
// fences; staged faults (preemption, timer spikes, clock drift); the
// hardware prefetchers; and a second machine per trial so the
// hierarchy-recycling path runs mid-trial. The returned fingerprint is the
// exact sequence of observed latencies and clock checkpoints — any
// scheduling, RNG or cache-state difference shifts at least one entry.
func equivalenceTrial(i int, src MachineSource) []int64 {
	cfg := batchTestConfig()
	seed := int64(1009*i + 31)
	var fp []int64

	m := src.NewMachine(cfg, 1<<24, seed)
	m.SchedulePreempt("a", 500, 700)
	m.ScheduleTimerSpike("b", 800, 4000, 9, seed)
	m.SetClockDrift("b", 120)
	m.Spawn("a", 0, nil, func(c *Core) {
		buf := c.Alloc(4 * mem.PageSize)
		for k := 0; k < 32; k++ {
			fp = append(fp, c.TimedLoad(buf+mem.VAddr((k%13)*64)))
		}
		c.Fence()
		for k := 0; k < 8; k++ {
			fp = append(fp, c.TimedFlush(buf+mem.VAddr(k*64)))
		}
		fp = append(fp, c.Now())
	})
	m.Spawn("b", 1, nil, func(c *Core) {
		buf := c.Alloc(4 * mem.PageSize)
		for k := 0; k < 24; k++ {
			fp = append(fp, c.TimedPrefetchNTA(buf+mem.VAddr((k%7)*64)))
			if k%5 == 0 {
				c.Spin(37)
			}
		}
		r := c.Load(buf)
		fp = append(fp, int64(r.Level), r.Latency, c.Now())
	})
	m.Run()

	// Second machine in the same trial: under the batch kernel this
	// recycles the first machine's hierarchy, so an incomplete reset shows
	// up as a fingerprint difference against the scalar kernel.
	m2 := src.NewMachine(cfg, 1<<24, seed^0x5a5a)
	m2.Spawn("walker", 0, nil, func(c *Core) {
		buf := c.Alloc(8 * mem.PageSize)
		for k := 0; k < 48; k++ {
			fp = append(fp, c.TimedLoad(buf+mem.VAddr(k*64)))
		}
		fp = append(fp, c.Now())
	})
	m2.Run()
	return fp
}

func runEquivalenceTrials(n int, tf TrialFor) [][]int64 {
	fps := make([][]int64, n)
	tf(n, func(i int, src MachineSource) {
		fps[i] = equivalenceTrial(i, src)
	})
	return fps
}

func TestBatchScalarEquivalence(t *testing.T) {
	const n = 10
	want := runEquivalenceTrials(n, SerialTrials)
	for _, width := range []int{1, 3, 8} {
		got := runEquivalenceTrials(n, func(n int, body func(i int, src MachineSource)) {
			RunBatch(n, width, NewArena(), body)
		})
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("width %d: trial %d fingerprint diverges from scalar (lengths %d vs %d)",
					width, i, len(got[i]), len(want[i]))
			}
		}
	}
	// The global arena pool must not change results either.
	ar := AcquireArena()
	got := runEquivalenceTrials(n, func(n int, body func(i int, src MachineSource)) {
		RunBatch(n, 4, ar, body)
	})
	ReleaseArena(ar)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("global-arena batch run diverges from scalar")
	}
}

func TestBatchRecyclesHierarchies(t *testing.T) {
	const n, width = 12, 3
	ar := NewArena()
	hs := make([]*hier.Hierarchy, n)
	RunBatch(n, width, ar, func(i int, src MachineSource) {
		m := src.NewMachine(batchTestConfig(), 1<<24, int64(i))
		hs[i] = m.H
		m.Spawn("a", 0, nil, func(c *Core) {
			buf := c.Alloc(mem.PageSize)
			c.Load(buf)
		})
		m.Run()
	})
	distinct := map[*hier.Hierarchy]bool{}
	for _, h := range hs {
		distinct[h] = true
	}
	// Each of the width slots builds one hierarchy and recycles it for its
	// remaining trials.
	if len(distinct) != width {
		t.Fatalf("batch of %d trials over %d slots built %d hierarchies; want %d",
			n, width, len(distinct), width)
	}
}

func TestBatchPanicAbortsFleet(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		defer func() {
			r := recover()
			ae, ok := r.(*AgentError)
			if !ok {
				t.Fatalf("recovered %T %v; want *AgentError", r, r)
			}
			if ae.Agent != "bomb" {
				t.Fatalf("AgentError.Agent = %q, want %q", ae.Agent, "bomb")
			}
		}()
		RunBatch(9, 3, NewArena(), func(i int, src MachineSource) {
			m := src.NewMachine(batchTestConfig(), 1<<24, int64(i))
			name := "worker"
			if i == 4 {
				name = "bomb"
			}
			m.Spawn(name, 0, nil, func(c *Core) {
				buf := c.Alloc(mem.PageSize)
				for k := 0; k < 100; k++ {
					c.Load(buf + mem.VAddr((k%16)*64))
				}
				if i == 4 {
					panic("boom")
				}
			})
			// A long-lived daemon on every machine: the abort path must
			// tear these down or their goroutines leak.
			m.SpawnDaemon("noise", 1, nil, func(c *Core) {
				buf := c.Alloc(mem.PageSize)
				for {
					c.Load(buf)
					c.Spin(50)
				}
			})
			m.Run()
		})
		t.Fatalf("RunBatch returned; want panic")
	}()
	// All slot and agent goroutines must be gone once the panic surfaces.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after batch abort: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunBatchDegenerateWidths(t *testing.T) {
	want := runEquivalenceTrials(3, SerialTrials)
	for _, width := range []int{0, 1} {
		got := runEquivalenceTrials(3, func(n int, body func(i int, src MachineSource)) {
			RunBatch(n, width, nil, body)
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("width %d serial fallback diverges from scalar", width)
		}
	}
	// n <= 0 must be a no-op, not a hang.
	RunBatch(0, 4, nil, func(i int, src MachineSource) {
		t.Fatalf("body called for n=0")
	})
}

// FuzzBatchScalarEquivalence drives randomized seeds and widths through
// both kernels and requires identical fingerprints.
func FuzzBatchScalarEquivalence(f *testing.F) {
	f.Add(int64(42), uint8(3))
	f.Add(int64(-7), uint8(1))
	f.Add(int64(1<<40), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, width uint8) {
		w := int(width%8) + 1
		const n = 4
		trial := func(i int, src MachineSource) []int64 {
			cfg := batchTestConfig()
			s := seed + int64(i)*911
			var fp []int64
			m := src.NewMachine(cfg, 1<<24, s)
			m.ScheduleTimerSpike("a", 300, 3000, 7, s)
			m.Spawn("a", 0, nil, func(c *Core) {
				buf := c.Alloc(2 * mem.PageSize)
				for k := 0; k < 24; k++ {
					fp = append(fp, c.TimedLoad(buf+mem.VAddr((k%9)*64)))
				}
				fp = append(fp, c.Now())
			})
			m.Run()
			return fp
		}
		want := make([][]int64, n)
		SerialTrials(n, func(i int, src MachineSource) { want[i] = trial(i, src) })
		got := make([][]int64, n)
		RunBatch(n, w, NewArena(), func(i int, src MachineSource) { got[i] = trial(i, src) })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batched fingerprints diverge from scalar (seed=%d width=%d)", seed, w)
		}
	})
}
