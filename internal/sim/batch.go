package sim

import (
	"math/rand"

	"leakyway/internal/hier"
	"leakyway/internal/mem"
)

// This file is the batched lockstep trial kernel. A Monte-Carlo sweep runs
// many short independent machines that share one platform geometry and
// differ only in seed or channel parameters; building each machine from
// scratch (frame shuffle, cache arrays, per-set policy state) costs more
// than stepping it. RunBatch amortizes construction two ways:
//
//   - an Arena recycles hierarchies (hier.Pool) and shares immutable frame
//     shuffles (mem.FrameShuffle) across the trials of one worker, and
//   - a BatchMachine steps K trials in lockstep quanta, so the trials of
//     one worker march through their simulated time together and the
//     arena's working set stays hot instead of being rebuilt per trial.
//
// Scheduling is invisible to the simulation: exactly one trial executes at
// any moment, each machine's op order and RNG draw order are untouched, and
// the quantum handshake only decides *which* parked trial resumes next. A
// batched sweep is therefore byte-identical to the serial one — the
// equivalence tests in batch_test.go and the experiment goldens pin this.

// MachineSource constructs the machines a trial body runs. Trial bodies
// written against a source work unchanged under the scalar kernel
// (Scalar), the serial recycling kernel (SerialTrials with an Arena), and
// the lockstep batch kernel (RunBatch).
type MachineSource interface {
	// NewMachine is MustNewMachine, except that the source may recycle the
	// previous machine it returned to this caller: a trial body must not
	// touch an earlier machine after requesting a new one.
	NewMachine(cfg hier.Config, memBytes uint64, seed int64) *Machine
}

// TrialFor runs body(0, src0), ..., body(n-1, srcN) in any order;
// implementations may run bodies concurrently, so a body must only write
// to per-index state. Each invocation gets a MachineSource valid for that
// body's duration.
type TrialFor func(n int, body func(i int, src MachineSource))

// scalarSource builds every machine from scratch.
type scalarSource struct{}

func (scalarSource) NewMachine(cfg hier.Config, memBytes uint64, seed int64) *Machine {
	return MustNewMachine(cfg, memBytes, seed)
}

// Scalar returns the non-recycling source: every NewMachine is a fresh
// MustNewMachine. This is the fallback kernel for traced runs and
// deadline-supervised (daemon) runs.
func Scalar() MachineSource { return scalarSource{} }

// SerialTrials is the scalar TrialFor: a plain loop over fresh machines.
func SerialTrials(n int, body func(i int, src MachineSource)) {
	for i := 0; i < n; i++ {
		body(i, Scalar())
	}
}

// shuffleKey identifies one frame shuffle: pool size plus the PhysMem seed.
type shuffleKey struct {
	bytes uint64
	seed  int64
}

// Arena owns the recyclable construction state for one worker: a hierarchy
// pool and a bounded cache of frame shuffles. It is not goroutine-safe —
// under RunBatch the lockstep protocol guarantees exactly one slot touches
// the arena at a time, and serial users own theirs outright.
type Arena struct {
	pool     *hier.Pool
	shuffles map[shuffleKey]*mem.FrameShuffle
}

// maxShuffles bounds the shuffle cache; a sweep touches a handful of
// (size, seed) pairs, so overflow means the workload changed and the cache
// is simply restarted.
const maxShuffles = 32

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{pool: hier.NewPool(), shuffles: map[shuffleKey]*mem.FrameShuffle{}}
}

// shuffle returns the cached frame shuffle for (bytes, seed), computing and
// caching it on first use.
func (ar *Arena) shuffle(bytes uint64, seed int64) *mem.FrameShuffle {
	k := shuffleKey{bytes, seed}
	if sh, ok := ar.shuffles[k]; ok {
		return sh
	}
	if len(ar.shuffles) >= maxShuffles {
		ar.shuffles = map[shuffleKey]*mem.FrameShuffle{}
	}
	sh := mem.NewFrameShuffle(bytes, seed)
	ar.shuffles[k] = sh
	return sh
}

// newMachine is MustNewMachine through the arena: the hierarchy comes from
// the pool and the frame shuffle from the cache. The result is
// indistinguishable from MustNewMachine(cfg, memBytes, seed).
func (ar *Arena) newMachine(cfg hier.Config, memBytes uint64, seed int64) *Machine {
	cfg.Seed = seed
	h, err := ar.pool.Get(cfg)
	if err != nil {
		panic(err)
	}
	return &Machine{
		H:         h,
		Phys:      mem.NewPhysMemFrom(ar.shuffle(memBytes, seed^0x9e3779b9)),
		rng:       rand.New(rand.NewSource(seed ^ 0x5DEECE66D)),
		SyncSlack: 3,
	}
}

// release returns a machine's hierarchy to the arena for recycling. The
// machine must not be used afterwards.
func (ar *Arena) release(m *Machine) {
	if m != nil {
		ar.pool.Put(m.H)
	}
}

// Process-global arena free list. Experiment contexts are created freely
// (one per daemon job, one per benchmark iteration), so tying recycled
// hierarchies to a context would rebuild them constantly; a small global
// pool keeps the steady-state construction cost near zero while bounding
// retained memory to a few fleets' worth of hierarchies.
var arenaPool = make(chan *Arena, 8)

// AcquireArena returns a recycled arena, or a fresh one when none is idle.
func AcquireArena() *Arena {
	select {
	case ar := <-arenaPool:
		return ar
	default:
		return NewArena()
	}
}

// ReleaseArena returns an arena to the global free list; beyond the list's
// capacity the arena is dropped for the GC.
func ReleaseArena(ar *Arena) {
	if ar == nil {
		return
	}
	select {
	case arenaPool <- ar:
	default:
	}
}

// batchQuantum is how many cycles a trial advances per lockstep turn.
// Small enough that the fleet's machines stay within one quantum of each
// other (keeping the arena's recycled state hot), large enough that the
// per-quantum channel handshake is noise against thousands of memory ops.
const batchQuantum = 8192

// batchKill unwinds a slot goroutine when the batch aborts after another
// slot's panic; the slot loop recovers it.
type batchKill struct{}

// batchGrant is the scheduler's permission for one slot to run until its
// machine clock passes quantumEnd.
type batchGrant struct {
	abort      bool
	quantumEnd int64
}

// batchEvent is a slot's report back to the scheduler: either a yield at
// the given machine clock, or completion (with the recovered panic value
// when the slot died).
type batchEvent struct {
	slot     int
	done     bool
	clock    int64
	panicVal any
}

// BatchMachine steps K trial slots in lockstep: exactly one slot executes
// between a grant and its next event, and the scheduler always resumes the
// parked slot whose machine clock is furthest behind. Machines created
// through a slot's MachineSource yield inside Machine.Run whenever their
// clock crosses the granted quantum.
type BatchMachine struct {
	arena  *Arena
	grants []chan batchGrant
	events chan batchEvent
}

// serialSource recycles through an arena without lockstep scheduling; it
// backs RunBatch's single-slot degenerate case.
type serialSource struct {
	arena *Arena
	cur   *Machine
}

func (ss *serialSource) NewMachine(cfg hier.Config, memBytes uint64, seed int64) *Machine {
	ss.recycle()
	ss.cur = ss.arena.newMachine(cfg, memBytes, seed)
	return ss.cur
}

func (ss *serialSource) recycle() {
	if ss.cur != nil {
		ss.arena.release(ss.cur)
		ss.cur = nil
	}
}

// slotSource is the per-slot MachineSource: machines are built through the
// shared arena and the previous machine's hierarchy is recycled on each
// NewMachine call.
type slotSource struct {
	b    *BatchMachine
	slot int
	cur  *Machine
}

func (ss *slotSource) NewMachine(cfg hier.Config, memBytes uint64, seed int64) *Machine {
	ss.recycle()
	m := ss.b.arena.newMachine(cfg, memBytes, seed)
	m.batch = ss.b
	m.slot = ss.slot
	// A fresh machine's clock (0) is already past this, so it yields once
	// before its first op and enters the lockstep rotation.
	m.quantumEnd = -1
	ss.cur = m
	return m
}

func (ss *slotSource) recycle() {
	if ss.cur != nil {
		ss.b.arena.release(ss.cur)
		ss.cur = nil
	}
}

// yield parks the running slot: it reports the machine's clock, waits for
// the next grant, and returns the new quantum end. On an abort grant it
// tears the machine's agents down and unwinds the slot with batchKill.
func (b *BatchMachine) yield(m *Machine, clock int64) int64 {
	b.events <- batchEvent{slot: m.slot, clock: clock}
	g := <-b.grants[m.slot]
	if g.abort {
		m.killAll()
		m.agents = nil
		panic(batchKill{})
	}
	return g.quantumEnd
}

// slotLoop runs trials slot, slot+K, slot+2K, ... and reports completion.
func (b *BatchMachine) slotLoop(slot, n, nslots int, body func(i int, src MachineSource)) {
	src := &slotSource{b: b, slot: slot}
	defer func() {
		r := recover()
		if _, isKill := r.(batchKill); isKill {
			r = nil
		}
		src.recycle() // the slot still holds the run grant here
		b.events <- batchEvent{slot: slot, done: true, panicVal: r}
	}()
	if g := <-b.grants[slot]; g.abort {
		return
	}
	for i := slot; i < n; i += nslots {
		body(i, src)
	}
}

// RunBatch executes body(0), ..., body(n-1) across up to width lockstep
// slots sharing arena (nil for a private one). Bodies receive a recycling
// MachineSource; the simulation output of every trial is byte-identical to
// SerialTrials' for any width. If a body panics, the remaining slots are
// torn down (their agents included) and the first panic value is re-raised
// on the caller's goroutine.
func RunBatch(n, width int, arena *Arena, body func(i int, src MachineSource)) {
	if n <= 0 {
		return
	}
	if width > n {
		width = n
	}
	if arena == nil {
		arena = NewArena()
	}
	if width <= 1 {
		// Degenerate fleet: keep the arena recycling, skip the lockstep
		// machinery.
		src := &serialSource{arena: arena}
		defer src.recycle()
		for i := 0; i < n; i++ {
			body(i, src)
		}
		return
	}

	b := &BatchMachine{
		arena:  arena,
		grants: make([]chan batchGrant, width),
		events: make(chan batchEvent, width),
	}
	for s := range b.grants {
		b.grants[s] = make(chan batchGrant)
	}
	for s := 0; s < width; s++ {
		go b.slotLoop(s, n, width, body)
	}

	// The scheduler: every live slot is parked except the one holding the
	// current grant. Fresh slots park at clock -1 so they are admitted
	// before any mid-flight trial.
	clock := make([]int64, width)
	done := make([]bool, width)
	for s := range clock {
		clock[s] = -1
	}
	live := width
	running := false
	var firstPanic any
	aborting := false
	for live > 0 {
		if !running {
			pick := -1
			for s := 0; s < width; s++ {
				if !done[s] && (pick < 0 || clock[s] < clock[pick]) {
					pick = s
				}
			}
			b.grants[pick] <- batchGrant{abort: aborting, quantumEnd: clock[pick] + batchQuantum}
			running = true
		}
		ev := <-b.events
		running = false
		if ev.done {
			done[ev.slot] = true
			live--
			if ev.panicVal != nil {
				if firstPanic == nil {
					firstPanic = ev.panicVal
				}
				aborting = true
			}
		} else {
			clock[ev.slot] = ev.clock
		}
	}
	if firstPanic != nil {
		panic(firstPanic)
	}
}
