# Build/verify entry points. `make verify` is the tier-1 gate: build,
# tests, and the race detector over the whole module (the parallel
# experiment engine must stay clean under -race).

GO ?= go

.PHONY: all build test race verify bench bench-jobs clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build test race

# Full benchmark sweep (quick-mode trial counts).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Engine scaling curve: the full suite at 1/2/4/8 workers.
bench-jobs:
	$(GO) test -bench 'BenchmarkRunAllJobs' -benchtime 3x -run '^$$' .

clean:
	$(GO) clean ./...
