// Package experiments contains one runnable reproduction per table and
// figure of the paper's evaluation, plus the ablations called out in
// DESIGN.md. Each experiment renders human-readable output and returns
// machine-checkable metrics that the test suite and EXPERIMENTS.md assert
// against.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"leakyway/internal/hier"
	"leakyway/internal/platform"
	"leakyway/internal/telemetry"
	"leakyway/internal/trace"
)

// Context carries the shared run parameters.
type Context struct {
	// Platforms are the machines to run on (defaults to Table I's two).
	Platforms []hier.Config
	// Seed drives every stochastic element. The engine never feeds it to
	// an RNG directly: every task derives its own stream with SplitSeed,
	// so results are independent of scheduling (see seed.go).
	Seed int64
	// Quick reduces trial counts (used by tests and -quick runs).
	Quick bool
	// Out receives the rendered report.
	Out io.Writer
	// Jobs caps the engine-wide worker count (experiments running
	// concurrently plus trial shards inside them). 0 and 1 both mean
	// serial. Any value produces byte-identical output for a given seed.
	Jobs int

	// BatchWidth is the lockstep fleet width for Monte-Carlo trial
	// batching (see BatchTrials in engine.go): 0 picks the default, 1
	// forces the scalar kernel. Output is byte-identical for any value.
	BatchWidth int

	// Ctx, when non-nil, makes the run cancellable: the engine checks it
	// before starting each experiment and between trial shards handed out
	// by Parallel, so RunAll returns the context's error (context.Canceled
	// or DeadlineExceeded) within about one trial shard of cancellation.
	// Nil (the default) runs to completion with zero checking overhead.
	Ctx context.Context

	// Progress, when non-nil, receives coarse run-progress checkpoints:
	// phase start/end per experiment and a counter tick per trial shard
	// handed out by Parallel. Checkpoints are single atomic operations
	// that feed nothing back into the simulation, so experiment output is
	// byte-identical with Progress attached or nil, for any Jobs value.
	// Nil (the default) costs one pointer check per checkpoint site.
	Progress *telemetry.Progress

	// Trace, when non-nil, collects per-machine event streams; TraceMask
	// selects the recorded subsystems (zero means all). Stream labels are
	// derived from experiment/platform/point names — never from
	// scheduling — so a traced run exports byte-identically for any Jobs
	// value.
	Trace     *trace.Collector
	TraceMask trace.Mask
	// tracePath is the label prefix accumulated through child contexts
	// ("fig8/platform/skylake").
	tracePath string

	// mu serializes writes to Out. The engine gives every task a private
	// buffer, so under RunAll this is never contended; it exists so that
	// a hand-built Context shared across goroutines still never tears a
	// single Printf.
	mu sync.Mutex
	// sem is the engine-wide worker-token bucket shared by child
	// contexts; see Parallel in engine.go.
	sem chan struct{}
	// guarded marks contexts whose task goroutine runs under runGuarded's
	// recover. Only then may Parallel unwind a cancelled run with a
	// taskAbort panic; on a hand-built context it just stops issuing
	// shards, so the panic can never escape into caller code.
	guarded bool
}

// NewContext returns a default context writing to out.
func NewContext(out io.Writer) *Context {
	return &Context{
		Platforms: platform.All(),
		Seed:      42,
		Out:       out,
		Jobs:      runtime.NumCPU(),
	}
}

// child clones the run parameters into a task context with its own seed
// and output sink, appending label to the trace-stream path. The
// worker-token bucket is shared so nested parallelism stays under the
// global -jobs cap.
func (ctx *Context) child(seed int64, out io.Writer, label string) *Context {
	return &Context{
		Platforms:  ctx.Platforms,
		Seed:       seed,
		Quick:      ctx.Quick,
		Out:        out,
		Jobs:       ctx.Jobs,
		BatchWidth: ctx.BatchWidth,
		Ctx:        ctx.Ctx,
		Progress:   ctx.Progress,
		Trace:      ctx.Trace,
		TraceMask:  ctx.TraceMask,
		tracePath:  joinLabel(ctx.tracePath, label),
		sem:        ctx.sem,
		guarded:    ctx.guarded,
	}
}

// canceled reports the run context's error, nil while the run may proceed.
// It is the engine's cooperative cancellation checkpoint; the nil-Ctx fast
// path keeps uncancellable runs free of overhead.
func (ctx *Context) canceled() error {
	if ctx.Ctx == nil {
		return nil
	}
	return ctx.Ctx.Err()
}

func joinLabel(base, part string) string {
	if base == "" {
		return part
	}
	if part == "" {
		return base
	}
	return base + "/" + part
}

// Tracer registers a trace stream labeled with the context's path plus
// parts and returns its tracer; nil (the disabled no-op sink) when the
// run is untraced. Every traced machine needs its own label, and labels
// must be deterministic — derive them from experiment, platform and
// sweep-point names, never from worker IDs or timing.
func (ctx *Context) Tracer(parts ...string) *trace.Tracer {
	if ctx.Trace == nil {
		return nil
	}
	label := ctx.tracePath
	for _, p := range parts {
		label = joinLabel(label, p)
	}
	mask := ctx.TraceMask
	if mask == 0 {
		mask = trace.PkgAll
	}
	return ctx.Trace.Tracer(label, mask)
}

// SeedFor derives the seed for a named sub-task of this context.
func (ctx *Context) SeedFor(parts ...string) int64 {
	return SplitSeed(ctx.Seed, parts...)
}

// ShardSeed derives the seed for numbered trial shard i.
func (ctx *Context) ShardSeed(i int) int64 { return splitSeedIndex(ctx.Seed, i) }

// Trials scales a full trial count down in quick mode.
func (ctx *Context) Trials(full int) int {
	if ctx.Quick {
		n := full / 10
		if n < 50 {
			n = 50
		}
		if n > full {
			n = full
		}
		return n
	}
	return full
}

// Printf writes to the context's output.
func (ctx *Context) Printf(format string, args ...any) {
	if ctx.Out != nil {
		ctx.mu.Lock()
		fmt.Fprintf(ctx.Out, format, args...)
		ctx.mu.Unlock()
	}
}

// Result is an experiment's machine-checkable outcome. Metric is safe to
// call from concurrent trial shards; the final map depends only on the
// names and values recorded, never on recording order.
type Result struct {
	// Metrics hold named scalar outcomes ("skylake/ntpntp_peak_kbps").
	Metrics map[string]float64
	// Report is the experiment's rendered text (banner included), captured
	// at flush time by the engine. Scenario extractors run over it.
	Report string

	mu sync.Mutex
}

// Metric records one named value.
func (r *Result) Metric(name string, v float64) {
	r.mu.Lock()
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
	r.mu.Unlock()
}

// Merge copies every metric of other into r (nil is a no-op).
func (r *Result) Merge(other *Result) {
	if other == nil {
		return
	}
	for k, v := range other.Metrics {
		r.Metric(k, v)
	}
}

// Experiment is one table/figure reproduction.
type Experiment struct {
	// ID is the registry key ("fig2", "table2", ...).
	ID string
	// Title says what it reproduces.
	Title string
	// Paper summarizes what the paper reports for this artifact.
	Paper string
	// Run executes the experiment.
	Run func(ctx *Context) (*Result, error)
}

var registry []Experiment

// paperOrder is the canonical presentation order (paper order, then the
// ablations).
var paperOrder = []string{
	"table1", "fig1", "fig2", "fig3", "fig4", "fig5",
	"fig6", "fig7", "fig8", "table2",
	"fig11", "fnrate", "fig9", "fig10", "fig12", "table3",
	"fig13", "counter", "evset-algos",
	"classic", "defense", "noninclusive", "selfsync", "pollution", "noise", "faults", "resolution", "stealth",
	"ablate-sets", "ablate-lanes", "ablate-hwpf", "ablate-policy",
}

func register(e Experiment) {
	registry = append(registry, e)
}

// orderOf returns an experiment's rank in the canonical order.
func orderOf(id string) int {
	for i, x := range paperOrder {
		if x == id {
			return i
		}
	}
	return len(paperOrder)
}

// All returns the experiments in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return orderOf(out[i].ID) < orderOf(out[j].ID) })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment IDs in paper order.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// header prints the experiment banner.
func header(ctx *Context, e Experiment) {
	ctx.Printf("\n=== %s — %s ===\n", e.ID, e.Title)
	if e.Paper != "" {
		ctx.Printf("paper: %s\n", e.Paper)
	}
}

// RunOne executes a single experiment by ID with its banner. The
// experiment sees the same derived seed it would inside RunAll, so a
// single-experiment run regenerates exactly its section of the full
// report.
func RunOne(ctx *Context, id string) (*Result, error) {
	e, ok := ByID(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have: %s)", id, strings.Join(IDs(), ", "))
	}
	results, err := runExperiments(ctx, []Experiment{e})
	return results[e.ID], err
}

// RunAll executes every registered experiment in paper order, collecting
// metrics. With ctx.Jobs > 1 experiments run on a worker pool (and the
// heavy experiments additionally shard their trials), but every task
// renders into a private buffer and buffers are flushed in paper order,
// so the report is byte-identical for any job count.
func RunAll(ctx *Context) (map[string]*Result, error) {
	return runExperiments(ctx, All())
}

// renderTable prints an aligned text table.
func renderTable(ctx *Context, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		ctx.Printf("  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// sortedMetricNames is a test helper.
func sortedMetricNames(r *Result) []string {
	names := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// shortName maps a platform to a metric prefix.
func shortName(cfg hier.Config) string {
	if strings.Contains(cfg.Name, "Kaby") {
		return "kabylake"
	}
	if strings.Contains(cfg.Name, "Skylake") {
		return "skylake"
	}
	return strings.ToLower(strings.Fields(cfg.Name)[0])
}
