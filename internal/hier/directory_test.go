package hier

import (
	"testing"

	"leakyway/internal/mem"
)

func directoryConfig(ntaVictim bool) Config {
	cfg := testConfig()
	cfg.L1Ways = 8 // room for the fillers next to dr, as on real parts
	cfg.NonInclusive = true
	cfg.DirectoryWays = 8
	cfg.DirectoryNTAIsVictim = ntaVictim
	return cfg
}

func TestDirectoryValidation(t *testing.T) {
	bad := testConfig()
	bad.DirectoryWays = 8 // inclusive + directory: invalid
	if _, err := New(bad); err == nil {
		t.Error("directory without NonInclusive accepted")
	}
	bad = testConfig()
	bad.NonInclusive = true
	bad.DirectoryWays = -1
	if _, err := New(bad); err == nil {
		t.Error("negative DirectoryWays accepted")
	}
}

func TestDirectoryTracksPrivateFills(t *testing.T) {
	h := MustNew(directoryConfig(true))
	pa := mem.PAddr(0x4040)
	h.Load(0, pa, 0)
	if !h.DirPresent(pa) {
		t.Fatal("loaded line not tracked by the directory")
	}
	h.Flush(pa, 100)
	if h.DirPresent(pa) {
		t.Fatal("flushed line still tracked")
	}
}

func TestDirectoryEvictionBackInvalidates(t *testing.T) {
	h := MustNew(directoryConfig(true))
	victim := mem.PAddr(0x4040)
	h.Load(0, victim, 0)
	// Thrash the directory set from another core: directory ways (8) +
	// the victim overflow the set and back-invalidate the victim.
	lines := congruentLines(h, victim, 16)
	now := int64(1000)
	for round := 0; round < 3; round++ {
		for _, pa := range lines {
			h.Load(1, pa, now)
			now += 1000
		}
	}
	if h.PresentInCore(LevelL1, 0, victim) || h.PresentInCore(LevelL2, 0, victim) {
		t.Fatal("directory pressure did not back-invalidate the private copy")
	}
}

func TestDirectoryNTPPrimitive(t *testing.T) {
	// The Section VI-B conjecture: with NTA entries installed as directory
	// eviction candidates, one remote NTA evicts the other party's entry
	// and back-invalidates its line — conflicts without priming, no LLC
	// involved.
	h := MustNew(directoryConfig(true))
	dr := mem.PAddr(0x4040)
	lines := congruentLines(h, dr, 8)
	now := int64(0)
	// Receiver fills the directory set around dr: 4 fillers, dr (via
	// PREFETCHNTA, mid-sequence so scan order does not favour it), then
	// 3 more fillers.
	for _, pa := range lines[:4] {
		h.Load(1, pa, now)
		now += 1000
	}
	h.PrefetchNTA(1, dr, now) // receiver: L1 + directory entry at age 3
	now += 1000
	if !h.DirPresent(dr) || h.Present(LevelLLC, dr) {
		t.Fatal("NTA should create a directory entry and skip the LLC")
	}
	for _, pa := range lines[4:7] {
		h.Load(1, pa, now)
		now += 1000
	}
	if !h.PresentInCore(LevelL1, 1, dr) {
		t.Fatal("receiver lost dr prematurely")
	}
	// Sender's single NTA displaces the candidate (dr's entry).
	ds := lines[7]
	h.PrefetchNTA(0, ds, now)
	if h.PresentInCore(LevelL1, 1, dr) {
		t.Fatal("sender's NTA did not evict dr via the directory")
	}
	// The receiver's re-prefetch of dr is a DRAM miss: the readable signal.
	res := h.PrefetchNTA(1, dr, now+1000)
	if res.Level != LevelMem {
		t.Fatalf("receiver probe level = %v, want DRAM", res.Level)
	}
}

func TestDirectoryWithoutConjecture(t *testing.T) {
	// With DirectoryNTAIsVictim off, the NTA entry behaves like a demand
	// entry and a single remote fill does not displace it.
	h := MustNew(directoryConfig(false))
	dr := mem.PAddr(0x4040)
	lines := congruentLines(h, dr, 8)
	now := int64(0)
	for _, pa := range lines[:4] {
		h.Load(1, pa, now)
		now += 1000
	}
	h.PrefetchNTA(1, dr, now)
	now += 1000
	for _, pa := range lines[4:7] {
		h.Load(1, pa, now)
		now += 1000
	}
	ds := lines[7]
	h.PrefetchNTA(0, ds, now)
	if !h.PresentInCore(LevelL1, 1, dr) {
		t.Fatal("without the conjecture, one NTA should not reliably evict the fresh entry")
	}
}
