package experiments

import (
	"fmt"

	"leakyway/internal/core"
	"leakyway/internal/evset"
	"leakyway/internal/evset/model"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Figure 13 — eviction-set construction time: access-based baseline vs Algorithm 2",
		Paper: "the prefetch-based algorithm is several times faster on both platforms (≈0.5 ms vs ≈0.15 ms)",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "counter",
		Title: "Section VI-D — countermeasure: modified insertion ages kill the construction advantage",
		Paper: "7.25x fewer memory references under the Intel policy, only 1.26x under the countermeasure (load age 1, NTA age 2)",
		Run:   runCounter,
	})
}

func runFig13(ctx *Context) (*Result, error) {
	res := &Result{}
	desired := 16
	trials := 3
	if ctx.Quick {
		desired = 8
		trials = 1
	}
	for _, cfg := range ctx.Platforms {
		var prefMs, baseMs float64
		var prefRefs, baseRefs float64
		for trial := 0; trial < trials; trial++ {
			m := sim.MustNewMachine(cfg, 1<<31, ctx.Seed+int64(trial))
			as := m.NewSpace()
			var pr, br evset.Result
			var perr, berr error
			m.Spawn("attacker", 0, as, func(c *sim.Core) {
				th := core.Calibrate(c, 48)
				t1 := c.Alloc(mem.PageSize)
				pr, perr = evset.BuildPrefetch(c, t1, evset.Options{
					Desired: desired, Pool: evset.NewPool(c, t1, 512*desired), Thresholds: th,
				})
				t2 := c.Alloc(mem.PageSize)
				br, berr = evset.BuildBaseline(c, t2, evset.Options{
					Desired: desired, Pool: evset.NewPool(c, t2, 2600*desired), Thresholds: th,
				})
			})
			m.Run()
			if perr != nil {
				return nil, fmt.Errorf("prefetch build: %w", perr)
			}
			if berr != nil {
				return nil, fmt.Errorf("baseline build: %w", berr)
			}
			freqHz := cfg.FreqGHz * 1e9
			prefMs += float64(pr.Cycles) / freqHz * 1e3
			baseMs += float64(br.Cycles) / freqHz * 1e3
			prefRefs += float64(pr.MemRefs)
			baseRefs += float64(br.MemRefs)
		}
		n := float64(trials)
		prefMs, baseMs, prefRefs, baseRefs = prefMs/n, baseMs/n, prefRefs/n, baseRefs/n
		rows := [][]string{
			{"baseline (access-based)", fmt.Sprintf("%.3f ms", baseMs), fmt.Sprintf("%.0f", baseRefs)},
			{"ours (Algorithm 2)", fmt.Sprintf("%.3f ms", prefMs), fmt.Sprintf("%.0f", prefRefs)},
		}
		ctx.Printf("\n%s (eviction set of %d lines)\n", cfg.Name, desired)
		renderTable(ctx, []string{"algorithm", "execution time", "memory references"}, rows)
		ctx.Printf("speedup: %.1fx in time, %.1fx in references\n", baseMs/prefMs, baseRefs/prefRefs)
		res.Metric(shortName(cfg)+"/baseline_ms", baseMs)
		res.Metric(shortName(cfg)+"/prefetch_ms", prefMs)
		res.Metric(shortName(cfg)+"/time_speedup", baseMs/prefMs)
	}
	return res, nil
}

func runCounter(ctx *Context) (*Result, error) {
	res := &Result{}
	comparisons := model.PaperComparison(16, 16)
	rows := [][]string{}
	paper := []float64{7.25, 1.26}
	for i, c := range comparisons {
		rows = append(rows, []string{
			c.Policy,
			fmt.Sprintf("%d", c.BaselineRefs),
			fmt.Sprintf("%d", c.PrefetchRefs),
			fmt.Sprintf("%.2fx", c.ImprovementRatio),
			fmt.Sprintf("%.2fx", paper[i]),
		})
	}
	renderTable(ctx, []string{"LLC insertion policy", "baseline refs", "Algorithm 2 refs", "improvement", "paper"}, rows)
	ctx.Printf("the countermeasure (load age 1, NTA age 2) collapses the advantage, as Section VI-D reports\n")
	res.Metric("intel_ratio", comparisons[0].ImprovementRatio)
	res.Metric("countermeasure_ratio", comparisons[1].ImprovementRatio)
	return res, nil
}
