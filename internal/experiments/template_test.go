package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"leakyway/internal/scenario"
)

// The shipped template pack under templates/ is generated from the builtin
// Spec literals (builtin.go): header comment + scenario.Marshal. The tests
// here pin the whole chain the README promises — the files on disk match
// the builtins byte-for-byte, parse back to deeply-equal Specs, and
// running them through the engine reproduces the registered experiments'
// report and metrics byte-identically for any -jobs value.

var updateTemplates = flag.Bool("update-templates", false,
	"regenerate templates/ from the builtin specs")

const templateDir = "../../templates"

func templateHeader(id string) string {
	return fmt.Sprintf(`# Scenario template for the %q experiment, generated from the builtin spec:
#   go test ./internal/experiments -run TestTemplatesInSync -update-templates
# Running it (leakyway run -template <file>) reproduces the registered
# experiment byte-for-byte; edit a copy to define a new scenario.
`, id)
}

func templateFile(s *scenario.Spec) []byte {
	return append([]byte(templateHeader(s.ID)), scenario.Marshal(s)...)
}

// TestTemplatesInSync pins templates/ to the builtin specs: regenerating
// every file must reproduce it byte-for-byte, and parsing it must yield a
// Spec deeply equal to the builtin literal (which also re-checks that
// Marshal is lossless for every shipped scenario).
func TestTemplatesInSync(t *testing.T) {
	if *updateTemplates {
		if err := os.MkdirAll(templateDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, s := range BuiltinSpecs() {
			path := filepath.Join(templateDir, s.ID+".yaml")
			if err := os.WriteFile(path, templateFile(s), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, s := range BuiltinSpecs() {
		path := filepath.Join(templateDir, s.ID+".yaml")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update-templates to regenerate)", path, err)
		}
		if want := templateFile(s); !bytes.Equal(data, want) {
			t.Errorf("%s: shipped template differs from the builtin spec; rerun with -update-templates", path)
		}
		parsed, err := scenario.Parse(data, path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !reflect.DeepEqual(parsed, s) {
			t.Errorf("%s: Parse(template) != builtin spec\nparsed:  %#v\nbuiltin: %#v", path, parsed, s)
		}
	}
}

// TestTemplateEquivalence is the headline guarantee: loading the shipped
// templates and running them through the engine produces a report and a
// metrics export byte-identical to the registered experiments', at -jobs 1
// and -jobs 4. Both sides run in quick mode under the default seed.
func TestTemplateEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the template pack three times")
	}
	specs, err := scenario.LoadPath(templateDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != len(BuiltinSpecs()) {
		t.Fatalf("templates/ holds %d scenarios, want %d", len(specs), len(BuiltinSpecs()))
	}
	registered := make([]Experiment, len(specs))
	fromTemplates := make([]Experiment, len(specs))
	for i, s := range specs {
		e, ok := ByID(s.ID)
		if !ok {
			t.Fatalf("template %s has no registered experiment", s.ID)
		}
		registered[i] = e
		fromTemplates[i] = FromSpec(s)
	}

	runPack := func(jobs int, list []Experiment) (string, string, map[string]*Result) {
		var rep bytes.Buffer
		ctx := NewContext(&rep)
		ctx.Quick = true
		ctx.Jobs = jobs
		results, err := runExperiments(ctx, list)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var met bytes.Buffer
		if err := WriteMetricsJSON(&met, results); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return rep.String(), met.String(), results
	}

	wantRep, wantMet, results := runPack(1, registered)
	for _, jobs := range []int{1, 4} {
		gotRep, gotMet, _ := runPack(jobs, fromTemplates)
		if gotRep != wantRep {
			t.Errorf("jobs=%d: template report differs from registered experiments (len %d vs %d)",
				jobs, len(gotRep), len(wantRep))
		}
		if gotMet != wantMet {
			t.Errorf("jobs=%d: template metrics JSON differs from registered experiments", jobs)
		}
	}

	// The shipped assertions must hold on the run they describe — quick
	// mode included, since CI runs them that way.
	for _, s := range specs {
		res := results[s.ID]
		if res == nil {
			t.Fatalf("%s: no result", s.ID)
		}
		ev := s.Evaluate(res.Report, res.Metrics)
		if ev.Failed > 0 {
			t.Errorf("%s: %d shipped assertion(s) failed:\n%s", s.ID, ev.Failed, ev.Render())
		}
		for _, x := range ev.Extracted {
			if !x.Matched {
				t.Errorf("%s: shipped extractor %s found no match", s.ID, x.Name)
			}
		}
	}
}
