package experiments

import (
	"fmt"
	"strings"

	"leakyway/internal/policy"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1 — quad-age LRU state walk of one LLC set",
		Paper: "a hit decrements the age; a miss evicts the first age-3 way, aging everyone when none exists (l6 evicts l0, l7 evicts l1)",
		Run:   runFig1,
	})
}

func runFig1(ctx *Context) (*Result, error) {
	q := policy.NewQuadAge()
	set := q.NewSet(6)
	names := []string{"l0", "l1", "l2", "l3", "l4", "l5"}

	// Build the initial state of Figure 1: ages l0:2 l1:3 l2:0 l3:2
	// l4:1 l5:1 (NTA fill yields 3, load fill 2, demand hits decrement).
	build := []struct {
		cls  policy.AccessClass
		hits int
	}{{policy.ClassLoad, 0}, {policy.ClassNTA, 0}, {policy.ClassLoad, 2}, {policy.ClassLoad, 0}, {policy.ClassLoad, 1}, {policy.ClassLoad, 1}}
	for w, b := range build {
		set.OnFill(w, b.cls)
		for i := 0; i < b.hits; i++ {
			set.OnHit(w, policy.ClassLoad)
		}
	}
	show := func(step string) {
		ages := set.Snapshot()
		cells := make([]string, len(ages))
		for w, a := range ages {
			cells[w] = fmt.Sprintf("%s:%d", names[w], a)
		}
		ctx.Printf("  %-46s | %s |\n", step, strings.Join(cells, " "))
	}
	res := &Result{}
	show("initial state")

	set.OnHit(1, policy.ClassLoad)
	show("load l1, hits in the LLC")

	v := set.Victim(policy.AllWays(6))
	evicted1 := names[v]
	set.OnInvalidate(v)
	set.OnFill(v, policy.ClassLoad)
	names[v] = "l6"
	show(fmt.Sprintf("load l6, misses and evicts %s", evicted1))

	v = set.Victim(policy.AllWays(6))
	evicted2 := names[v]
	set.OnInvalidate(v)
	set.OnFill(v, policy.ClassLoad)
	names[v] = "l7"
	show(fmt.Sprintf("load l7, misses and evicts %s", evicted2))

	ok := 0.0
	if evicted1 == "l0" && evicted2 == "l1" {
		ok = 1
	}
	res.Metric("eviction_order_matches_paper", ok)
	return res, nil
}
