package experiments

import (
	"fmt"

	"leakyway/internal/channel"
	"leakyway/internal/hier"
	"leakyway/internal/policy"
	"leakyway/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "defense",
		Title: "Extension — defense evaluation: isolation, hardened insertion, re-keying",
		Paper: "Section VI-D: isolation and randomization defenses against conflict-based channels also stop NTP+NTP",
		Run:   runDefense,
	})
}

func runDefense(ctx *Context) (*Result, error) {
	res := &Result{}
	bits := ctx.Trials(1500)
	base := ctx.Platforms[0]

	ctx.Printf("NTP+NTP at 1500 cycles/bit under each defense:\n\n")
	rows := [][]string{}
	variants := []struct {
		name string
		key  string
		mod  func(p *hier.Config)
	}{
		{"undefended (stock Skylake)", "stock", func(*hier.Config) {}},
		{"way-partitioned LLC (4 ways/core isolation)", "partition", func(p *hier.Config) { p.LLCPartitionWays = 4 }},
		{"hardened insertion (load=1, NTA=2)", "hardened", func(p *hier.Config) { p.LLCPolicy = policy.NewQuadAgeCountermeasure() }},
	}
	reps := make([]channel.Report, len(variants))
	ctx.Parallel(len(variants), func(i int) {
		p := base
		variants[i].mod(&p)
		ccfg := channel.DefaultConfig(p.Name, p.FreqGHz)
		ccfg.NoisePeriod = 0
		ccfg.Interval = 1500
		seed := ctx.SeedFor(variants[i].key)
		m := sim.MustNewMachine(p, 1<<30, seed)
		reps[i], _ = channel.RunNTPNTP(m, ccfg, channel.RandomMessage(bits, seed))
	})
	for i, v := range variants {
		rep := reps[i]
		rows = append(rows, []string{v.name, fmt.Sprintf("%.2f%%", 100*rep.BER), fmt.Sprintf("%.1f KB/s", rep.CapacityKBps)})
		res.Metric(v.key+"_capacity", rep.CapacityKBps)
		res.Metric(v.key+"_ber", rep.BER)
	}
	renderTable(ctx, []string{"defense", "BER", "capacity"}, rows)

	// Re-keying analysis: a randomized, periodically re-keyed index (e.g.
	// ScatterCache/PhantomCache-style) invalidates eviction sets at every
	// re-key, so the attacker must rebuild them each epoch. Combining the
	// measured Algorithm 2 construction cost (Figure 13 machinery) with
	// the channel's peak bounds the achievable rate per re-key period.
	ctx.Printf("\nre-keyed randomized index (analysis): eviction sets die at every re-key;\n")
	ctx.Printf("the channel can only run for period−buildTime out of every period.\n")
	const buildMs = 0.18 // measured Algorithm 2 construction time (fig13, Skylake)
	peak := res.Metrics["stock_capacity"]
	rkRows := [][]string{}
	for _, periodMs := range []float64{0.1, 0.25, 1, 10, 100} {
		frac := (periodMs - 2*buildMs) / periodMs // two target sets to rebuild
		if frac < 0 {
			frac = 0
		}
		eff := peak * frac
		rkRows = append(rkRows, []string{
			fmt.Sprintf("%.2f ms", periodMs),
			fmt.Sprintf("%.0f%%", 100*frac),
			fmt.Sprintf("%.1f KB/s", eff),
		})
		res.Metric(fmt.Sprintf("rekey_%gms_capacity", periodMs), eff)
	}
	renderTable(ctx, []string{"re-key period", "usable airtime", "capacity bound"}, rkRows)
	return res, nil
}
