package experiments

import "leakyway/internal/seed"

// Seed sharding. The engine never hands two tasks the same RNG stream:
// every task (experiment, platform, trial shard) gets a seed derived from
// the master seed and the task's key, so results depend only on (master
// seed, key) — never on scheduling order, job count, or which goroutine
// happened to pick the task up. That is what makes `run all -jobs 8`
// byte-identical to `-jobs 1`. The derivation itself lives in
// internal/seed so lower layers (e.g. the fault injectors) share it.

// SplitSeed derives a child seed from a master seed and a task key; see
// seed.Split for the algebra.
func SplitSeed(master int64, parts ...string) int64 {
	return seed.Split(master, parts...)
}

// splitSeedIndex derives the seed for numbered shard i — the common case
// when fanning trials out across goroutines.
func splitSeedIndex(master int64, i int) int64 {
	return seed.Index(master, i)
}
