// Package service implements leakywayd: a crash-safe HTTP experiment
// service over the deterministic engine. Submissions flow through a
// bounded queue with backpressure into a fixed worker pool; results land
// in a content-addressed store keyed on the canonical template and run
// parameters, so an identical resubmission is served from cache without
// re-simulating. A write-ahead journal makes accepted work durable: a
// job acknowledged with 202 survives SIGKILL and completes after
// restart, and SIGTERM drains the queue before exiting.
//
// The daemon is observable while it runs: every operational counter
// lives in a telemetry registry exposed as Prometheus text on
// /metricsz, each execution publishes progress checkpoints streamed
// over SSE from /v1/jobs/{id}/events, and operational logging is
// structured (log/slog) with job-scoped loggers.
package service

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"path/filepath"
	"sync"
	"time"

	"leakyway/internal/experiments"
	"leakyway/internal/iofault"
	"leakyway/internal/scenario"
	"leakyway/internal/telemetry"
)

// Config parameterizes a Server. The zero value plus a DataDir is usable;
// New fills in defaults.
type Config struct {
	// DataDir holds the result store and the journal.
	DataDir string
	// Workers is the worker-pool size (default 2).
	Workers int
	// QueueCap bounds the number of queued-not-yet-running executions;
	// beyond it submissions get 429 + Retry-After (default 64).
	QueueCap int
	// JobTimeout is the per-attempt deadline (default 10m).
	JobTimeout time.Duration
	// MaxRetries is how many times a failed attempt is retried with
	// jittered exponential backoff before the job fails (default 2;
	// negative disables retries).
	MaxRetries int
	// RetryBase is the backoff base (default 100ms).
	RetryBase time.Duration
	// Stall delays each attempt before it touches the engine. Test and
	// smoke hook: it widens the window in which a crash interrupts an
	// accepted-but-incomplete job.
	Stall time.Duration
	// ProgressInterval is the sampling cadence for per-job progress:
	// both the recorder that builds the stored "progress" artifact and
	// the live SSE stream tick at this rate (default 250ms).
	ProgressInterval time.Duration
	// Runner executes submissions (default EngineRunner).
	Runner Runner
	// FS is the filesystem the store and journal write through (default
	// the real OS). Chaos tests swap in an iofault.Injector to drive the
	// production durability paths through hostile-disk conditions.
	FS iofault.FS
	// StoreQuotaBytes caps the result store's total artifact bytes;
	// exceeding it evicts least-recently-accessed unpinned entries. Zero
	// means unlimited.
	StoreQuotaBytes int64
	// StoreMaxEntries caps the result store's entry count the same way.
	StoreMaxEntries int
	// WALRotateBytes is the journal size past which the server compacts
	// it online to exactly the live state (default 4 MiB; negative
	// disables rotation).
	WALRotateBytes int64
	// FsyncRetries bounds how many transient journal fsync failures an
	// append absorbs with exponential backoff before the server degrades
	// (default 3; negative disables retries). FsyncRetryBase is the
	// backoff base (default 5ms).
	FsyncRetries   int
	FsyncRetryBase time.Duration
	// ProbeInterval is how often a degraded server probes the disk to
	// decide whether to resume admissions (default 1s).
	ProbeInterval time.Duration
	// Logger receives structured operational logs (default
	// slog.Default()). The server derives job-scoped child loggers from
	// it, so every line about an execution carries its job ID and key.
	Logger *slog.Logger
}

// Server is the daemon's core. It owns the job table, the single-flight
// index, the bounded queue, the store and the journal.
type Server struct {
	cfg     Config
	store   *Store
	journal *Journal
	met     *serverMetrics

	mu       sync.Mutex
	jobs     map[string]*Job
	inflight map[string]*execution // key → the execution new jobs attach to
	queued   int                   // executions accepted but not yet running
	seq      int64
	draining bool

	queue chan *execution

	// Degraded mode: set when a durability write (journal append, store
	// publish) fails. Admissions answer 503 + Retry-After while reads,
	// SSE and running jobs continue; a probe goroutine exercises the
	// failing paths until they heal, then clears the state.
	healthMu       sync.Mutex
	degraded       bool
	degradedReason string
	degradedSince  time.Time
	probeWG        sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
}

// Metrics exposes the server's telemetry registry — the same one
// /metricsz renders — so embedders (loadgen, tests) can read counters
// directly.
func (s *Server) Metrics() *telemetry.Registry { return s.met.reg }

// New opens the data directory, verifies store integrity, replays the
// journal — re-enqueueing every accepted job that has no terminal record
// — and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: DataDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 10 * time.Minute
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.ProgressInterval <= 0 {
		cfg.ProgressInterval = 250 * time.Millisecond
	}
	if cfg.Runner == nil {
		cfg.Runner = EngineRunner
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.FS == nil {
		cfg.FS = iofault.OS()
	}
	if cfg.WALRotateBytes == 0 {
		cfg.WALRotateBytes = 4 << 20
	}
	if cfg.FsyncRetries < 0 {
		cfg.FsyncRetries = 0
	} else if cfg.FsyncRetries == 0 {
		cfg.FsyncRetries = 3
	}
	if cfg.FsyncRetryBase <= 0 {
		cfg.FsyncRetryBase = 5 * time.Millisecond
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}

	s := &Server{
		cfg:      cfg,
		jobs:     map[string]*Job{},
		inflight: map[string]*execution{},
	}
	s.met = newServerMetrics(s)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	store, removed, err := OpenStore(cfg.FS, filepath.Join(cfg.DataDir, "store"), StoreOptions{
		QuotaBytes:   cfg.StoreQuotaBytes,
		MaxEntries:   cfg.StoreMaxEntries,
		Logger:       cfg.Logger,
		Evictions:    s.met.storeEvictions,
		EvictedBytes: s.met.storeEvictedBytes,
	})
	if err != nil {
		return nil, err
	}
	s.store = store
	for _, r := range removed {
		cfg.Logger.Warn("store integrity sweep removed entry", "entry", r.Entry, "reason", r.Reason)
		s.met.sweepRemoved.Inc()
	}

	jpath := filepath.Join(cfg.DataDir, "journal.jsonl")
	entries, err := replayJournal(cfg.FS, jpath)
	if err != nil {
		return nil, err
	}

	recovered := s.replay(entries)

	// The channel must hold everything admission can let in: QueueCap
	// fresh executions plus however many the journal recovered, so the
	// recovery enqueue below can never block.
	s.queue = make(chan *execution, cfg.QueueCap+len(recovered))

	// Compact: the rewritten journal carries exactly the live state.
	s.journal, err = rewriteJournal(cfg.FS, jpath, s.liveEntries(), journalConfig{
		rotateBytes: cfg.WALRotateBytes,
		syncRetries: cfg.FsyncRetries,
		retryBase:   cfg.FsyncRetryBase,
	})
	if err != nil {
		return nil, err
	}
	s.journal.fsyncHist = s.met.walFsync
	s.journal.syncRetriesCount = s.met.walFsyncRetries
	s.journal.rotations = s.met.walRotations

	for _, exec := range recovered {
		s.store.Pin(exec.key)
		s.queued++
		exec.enqueuedAt = time.Now()
		s.queue <- exec
		s.met.recovered.Inc()
		cfg.Logger.Info("recovery re-enqueued job", "job", exec.jobs[0].ID, "key", shortKey(exec.key))
	}

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// shortKey abbreviates a cache key for log lines.
func shortKey(key string) string {
	h := hexOf(key)
	if len(h) > 12 {
		h = h[:12]
	}
	return h
}

// replay rebuilds the job table from journal entries and returns the
// executions to re-enqueue: accepted jobs with no terminal record whose
// result is not already in the store. A trailing "clean" entry means the
// previous process drained fully, so nothing needs recovery.
func (s *Server) replay(entries []journalEntry) []*execution {
	byKey := map[string]*execution{}
	var order []string
	for _, e := range entries {
		switch e.Op {
		case opAccept:
			if e.Sub == nil {
				continue
			}
			j := &Job{ID: e.ID, Key: e.Key, Status: StatusQueued, sub: *e.Sub}
			s.jobs[j.ID] = j
			if n := seqOf(e.ID); n > s.seq {
				s.seq = n
			}
			exec := byKey[e.Key]
			if exec == nil {
				exec = newExecution(e.Key, *e.Sub, nil)
				byKey[e.Key] = exec
				order = append(order, e.Key)
			}
			j.exec = exec
			exec.jobs = append(exec.jobs, j)
		case opDone:
			if exec := byKey[e.Key]; exec != nil {
				for _, j := range exec.jobs {
					if !j.canceled {
						j.Status = StatusDone
					}
				}
			}
		case opFail:
			if exec := byKey[e.Key]; exec != nil {
				for _, j := range exec.jobs {
					if !j.canceled {
						j.Status = StatusFailed
						j.Error = e.Err
					}
				}
			}
		case opCancel:
			if j := s.jobs[e.ID]; j != nil {
				j.Status = StatusCanceled
				j.canceled = true
			}
		case opClean:
			// Clean shutdown marker: all prior state is settled.
		}
	}

	var recovered []*execution
	for _, key := range order {
		exec := byKey[key]
		var live []*Job
		for _, j := range exec.jobs {
			if !j.terminal() {
				live = append(live, j)
			}
		}
		if len(live) == 0 {
			continue
		}
		// The result may have been stored in the crash window between
		// store.Put and the journal's done entry; serve it, don't re-run.
		if s.store.Has(key) {
			for _, j := range live {
				j.Status = StatusDone
			}
			continue
		}
		spec, err := scenario.Parse([]byte(exec.sub.Template), exec.sub.Filename)
		if err != nil {
			// An accepted job had a valid template; a parse failure here
			// means the journal lied. Fail the jobs rather than crash.
			for _, j := range live {
				j.Status = StatusFailed
				j.Error = fmt.Sprintf("recovery: template no longer parses: %v", err)
			}
			continue
		}
		exec.spec = spec
		exec.jobs = live
		recovered = append(recovered, exec)
	}
	return recovered
}

// liveEntries renders the current job table as a minimal journal: one
// accept per job, plus its terminal record if it has one.
func (s *Server) liveEntries() []journalEntry {
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sortStrings(ids)
	var entries []journalEntry
	for _, id := range ids {
		j := s.jobs[id]
		sub := j.sub
		entries = append(entries, journalEntry{Op: opAccept, ID: j.ID, Key: j.Key, Sub: &sub})
		switch j.Status {
		case StatusDone:
			entries = append(entries, journalEntry{Op: opDone, ID: j.ID, Key: j.Key})
		case StatusFailed:
			entries = append(entries, journalEntry{Op: opFail, ID: j.ID, Key: j.Key, Err: j.Error})
		case StatusCanceled:
			entries = append(entries, journalEntry{Op: opCancel, ID: j.ID, Key: j.Key})
		}
	}
	return entries
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for k := i; k > 0 && ss[k] < ss[k-1]; k-- {
			ss[k], ss[k-1] = ss[k-1], ss[k]
		}
	}
}

// seqOf parses the numeric part of a "j-000042" job ID.
func seqOf(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "j-%d", &n); err != nil {
		return 0
	}
	return n
}

// submitError is an admission failure with an HTTP status.
type submitError struct {
	status     int
	retryAfter int // seconds; nonzero only for 429
	msg        string
}

func (e *submitError) Error() string { return e.msg }

// Submit admits one submission. The returned job is either freshly
// accepted (journalled before return), attached to an in-flight
// execution for the same key, or answered from the result store
// (Job.CacheHit). The error, if non-nil, is a *submitError.
func (s *Server) Submit(sub Submission) (*Job, error) {
	if err := sub.normalize(); err != nil {
		return nil, &submitError{status: 400, msg: err.Error()}
	}
	spec, err := scenario.Parse([]byte(sub.Template), sub.Filename)
	if err != nil {
		return nil, &submitError{status: 400, msg: err.Error()}
	}
	key := jobKey(spec, sub)

	s.mu.Lock()
	defer s.mu.Unlock()

	if s.draining {
		return nil, &submitError{status: 503, msg: "draining: not accepting new jobs"}
	}
	if deg, reason := s.DegradedState(); deg {
		s.met.rejectedDegraded.Inc()
		return nil, &submitError{
			status:     503,
			retryAfter: s.probeRetryAfter(),
			msg:        fmt.Sprintf("degraded (%s): not accepting new jobs; retry later", reason),
		}
	}

	// Cache hit: the result exists; no queueing, no simulation. The job
	// record is journalled as already-done so a restart keeps serving it.
	if s.store.Has(key) {
		j := s.newJobLocked(key, sub)
		j.Status = StatusDone
		j.CacheHit = true
		subCopy := j.sub
		if err := s.journal.Append(journalEntry{Op: opAccept, ID: j.ID, Key: key, Sub: &subCopy}); err != nil {
			return nil, s.journalFailLocked(j, err)
		}
		if err := s.journal.Append(journalEntry{Op: opDone, ID: j.ID, Key: key}); err != nil {
			return nil, s.journalFailLocked(j, err)
		}
		s.met.accepted.Inc()
		s.met.storeHit.Inc()
		s.met.completed.Inc()
		s.maybeRotateLocked()
		return j, nil
	}

	// Single-flight: someone is already computing this key; attach.
	if exec := s.inflight[key]; exec != nil {
		j := s.newJobLocked(key, sub)
		j.exec = exec
		j.Coalesced = true
		subCopy := j.sub
		if err := s.journal.Append(journalEntry{Op: opAccept, ID: j.ID, Key: key, Sub: &subCopy}); err != nil {
			return nil, s.journalFailLocked(j, err)
		}
		exec.jobs = append(exec.jobs, j)
		s.met.accepted.Inc()
		s.met.storeCoalesced.Inc()
		s.maybeRotateLocked()
		return j, nil
	}

	// Backpressure: the queue is full.
	if s.queued >= s.cfg.QueueCap {
		s.met.rejected.Inc()
		retry := 1 + s.queued/s.cfg.Workers
		return nil, &submitError{
			status:     429,
			retryAfter: retry,
			msg:        fmt.Sprintf("queue full (%d queued); retry later", s.queued),
		}
	}

	j := s.newJobLocked(key, sub)
	exec := newExecution(key, j.sub, spec)
	j.exec = exec
	exec.jobs = []*Job{j}

	// Durability point: fsync the accept before acknowledging. If this
	// process dies any time after here, restart re-runs the job.
	subCopy := j.sub
	if err := s.journal.Append(journalEntry{Op: opAccept, ID: j.ID, Key: key, Sub: &subCopy}); err != nil {
		return nil, s.journalFailLocked(j, err)
	}
	// Pin before enqueueing: the execution's key must not be evictable
	// while a worker may be between Put and serving the artifacts.
	s.store.Pin(key)
	s.inflight[key] = exec
	s.queued++
	exec.enqueuedAt = time.Now()
	s.queue <- exec // cannot block: queued < QueueCap ≤ cap(queue)
	s.met.accepted.Inc()
	s.met.storeMiss.Inc()
	s.maybeRotateLocked()
	return j, nil
}

// journalFailLocked rolls back an admission whose WAL append failed: the
// job record is withdrawn (nothing was acknowledged), the server enters
// degraded mode, and the client gets 503 + Retry-After. Caller holds
// s.mu.
func (s *Server) journalFailLocked(j *Job, err error) *submitError {
	delete(s.jobs, j.ID)
	s.met.rejectedDegraded.Inc()
	s.enterDegraded(fmt.Sprintf("wal append: %v", err))
	return &submitError{
		status:     503,
		retryAfter: s.probeRetryAfter(),
		msg:        fmt.Sprintf("journal unavailable: %v", err),
	}
}

// maybeRotateLocked compacts the journal online once it outgrows its
// rotation threshold. Rotation failure is a durability failure: the
// server degrades rather than risk appending to a doomed segment.
// Caller holds s.mu.
func (s *Server) maybeRotateLocked() {
	if !s.journal.NeedsRotation() {
		return
	}
	before := s.journal.Size()
	if err := s.journal.Rotate(s.liveEntries()); err != nil {
		s.cfg.Logger.Error("journal rotation failed", "err", err)
		s.enterDegraded(fmt.Sprintf("wal rotate: %v", err))
		return
	}
	s.cfg.Logger.Info("journal compacted online", "before_bytes", before, "after_bytes", s.journal.Size())
}

// newJobLocked allocates the next job record. Caller holds s.mu.
func (s *Server) newJobLocked(key string, sub Submission) *Job {
	s.seq++
	j := &Job{ID: fmt.Sprintf("j-%06d", s.seq), Key: key, Status: StatusQueued, sub: sub}
	s.jobs[j.ID] = j
	return j
}

// Job returns the record for id, or nil.
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// snapshotJob copies a job's client-visible state under the lock.
func (s *Server) snapshotJob(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return Job{}, false
	}
	return *j, true
}

// Cancel marks a job canceled. The shared execution is aborted only when
// every job attached to it is canceled — other submitters still want the
// result.
func (s *Server) Cancel(id string) (bool, error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return false, nil
	}
	if j.terminal() {
		s.mu.Unlock()
		return true, nil
	}
	j.Status = StatusCanceled
	j.canceled = true
	err := s.journal.Append(journalEntry{Op: opCancel, ID: j.ID, Key: j.Key})
	if err != nil {
		// The cancel is applied in memory but not durable; degrade so the
		// probe chases the disk while running work continues.
		s.enterDegraded(fmt.Sprintf("wal append: %v", err))
	}
	var abort context.CancelFunc
	if exec := j.exec; exec != nil {
		all := true
		for _, ej := range exec.jobs {
			if !ej.canceled {
				all = false
				break
			}
		}
		if all && exec.cancel != nil {
			abort = exec.cancel
		}
	}
	s.mu.Unlock()
	s.met.canceled.Inc()
	if abort != nil {
		abort()
	}
	return true, err
}

// Drain stops admissions, lets the workers finish every queued and
// running execution, journals the clean-shutdown marker and closes the
// journal. It is the SIGTERM path; after it returns the process can exit
// 0 with no accepted work lost.
func (s *Server) Drain() error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()

	s.wg.Wait()

	// Stop any degraded-mode probe before touching the journal for the
	// last time; probes append through the same handle.
	s.baseCancel()
	s.probeWG.Wait()

	s.store.Close()

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.journal.Append(journalEntry{Op: opClean}); err != nil {
		s.journal.Close()
		return err
	}
	return s.journal.Close()
}

// Kill abandons the server without draining: running attempts are
// cancelled and nothing further is journalled, so a restart from the
// same DataDir must recover the incomplete jobs. Test hook simulating a
// hard crash as closely as a same-process API can.
func (s *Server) Kill() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.baseCancel()
	s.wg.Wait()
	s.probeWG.Wait()
	s.journal.Close()
}

// worker is the pool loop: one execution at a time off the queue.
func (s *Server) worker() {
	defer s.wg.Done()
	for exec := range s.queue {
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		s.met.queueWait.ObserveSince(exec.enqueuedAt)
		if s.baseCtx.Err() != nil {
			return // Kill: abandon without journalling, recovery will rerun
		}
		s.met.workersBusy.Add(1)
		s.runExecution(exec)
		s.met.workersBusy.Add(-1)
	}
}

// runExecution drives one execution to a terminal state: serve from
// store if a result appeared meanwhile, otherwise attempt with deadline
// + panic containment + bounded jittered retries. While an attempt runs,
// a recorder goroutine samples the execution's progress tracker into the
// progress log that becomes the stored "progress" artifact.
func (s *Server) runExecution(exec *execution) {
	defer close(exec.done)

	// Recovery idempotence: the store may already hold the result (crash
	// after Put, before the done entry).
	if s.store.Has(exec.key) {
		s.finish(exec, StatusDone, "")
		return
	}

	lg := s.cfg.Logger.With("job", exec.jobs[0].ID, "key", shortKey(exec.key))

	exec.progLog.begin()
	recStop := make(chan struct{})
	var recWG sync.WaitGroup
	recWG.Add(1)
	go func() {
		defer recWG.Done()
		ticker := time.NewTicker(s.cfg.ProgressInterval)
		defer ticker.Stop()
		for {
			select {
			case <-recStop:
				return
			case <-ticker.C:
				exec.progLog.record(exec.prog.Snapshot())
			}
		}
	}()
	var recOnce sync.Once
	stopRecorder := func() {
		recOnce.Do(func() {
			close(recStop)
			recWG.Wait()
			exec.progLog.record(exec.prog.Snapshot())
		})
	}
	defer stopRecorder()

	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		allCanceled := true
		for _, j := range exec.jobs {
			if !j.canceled {
				allCanceled = false
				j.Status = StatusRunning
				j.Attempts = attempt + 1
			}
		}
		var actx context.Context
		var cancel context.CancelFunc
		if !allCanceled {
			actx, cancel = context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
			exec.cancel = cancel
		}
		s.mu.Unlock()

		if allCanceled {
			s.finishJournal(exec, journalEntry{Op: opCancel, Key: exec.key})
			s.finish(exec, StatusCanceled, "")
			return
		}

		if attempt > 0 {
			exec.prog.Reset()
			exec.progLog.begin()
		}
		res, err := s.attempt(actx, exec)
		cancel()
		s.mu.Lock()
		exec.cancel = nil
		s.mu.Unlock()

		if err == nil {
			stopRecorder()
			res.Progress = exec.progLog.marshal()
			if perr := s.store.Put(exec.key, experiments.EngineVersion, res); perr != nil {
				// A failed publish is a disk problem: degrade admissions
				// while this attempt retries.
				s.enterDegraded(fmt.Sprintf("store put: %v", perr))
				err = fmt.Errorf("store: %w", perr)
			} else {
				s.finishJournal(exec, journalEntry{Op: opDone, Key: exec.key})
				s.finish(exec, StatusDone, "")
				return
			}
		}

		if s.baseCtx.Err() != nil {
			// Kill mid-attempt: abandon silently; the journal still holds
			// the accept, so restart recovers this job.
			return
		}
		if attempt >= s.cfg.MaxRetries {
			msg := err.Error()
			s.finishJournal(exec, journalEntry{Op: opFail, Key: exec.key, Err: msg})
			s.finish(exec, StatusFailed, msg)
			return
		}
		s.met.retries.Inc()
		backoff := s.cfg.RetryBase << uint(attempt)
		backoff += time.Duration(rand.Int63n(int64(backoff)/2 + 1))
		lg.Warn("attempt failed; retrying", "attempt", attempt+1, "err", err, "backoff", backoff)
		select {
		case <-time.After(backoff):
		case <-s.baseCtx.Done():
			return
		}
	}
}

// attempt runs the Runner once with panic containment. A panic in the
// runner (or the engine under it) fails this attempt; it never takes the
// worker — or the daemon — down.
func (s *Server) attempt(ctx context.Context, exec *execution) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.met.panics.Inc()
			err = fmt.Errorf("runner panic: %v", r)
		}
	}()
	if s.cfg.Stall > 0 {
		select {
		case <-time.After(s.cfg.Stall):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s.cfg.Runner(ctx, exec.sub, exec.spec, exec.prog)
}

// finishJournal appends one terminal entry for the execution. A journal
// write failure here is logged and degrades admissions, but is not fatal
// to the job: the store already holds the result (for done), so the
// worst case after a crash is a redundant re-check against the store.
func (s *Server) finishJournal(exec *execution, e journalEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.journal.Append(e); err != nil {
		s.cfg.Logger.Error("journal append failed", "op", e.Op, "key", shortKey(exec.key), "err", err)
		s.enterDegraded(fmt.Sprintf("wal append: %v", err))
		return
	}
	s.maybeRotateLocked()
}

// finish moves every non-canceled job on the execution to status, clears
// the single-flight slot and releases the execution's eviction pin.
func (s *Server) finish(exec *execution, status, errMsg string) {
	if h := s.met.jobDuration(status); h != nil && !exec.enqueuedAt.IsZero() {
		h.ObserveSince(exec.enqueuedAt)
	}
	s.store.Unpin(exec.key)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range exec.jobs {
		if j.canceled {
			continue
		}
		j.Status = status
		j.Error = errMsg
		switch status {
		case StatusDone:
			s.met.completed.Inc()
		case StatusFailed:
			s.met.failed.Inc()
		}
	}
	delete(s.inflight, exec.key)
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// queueDepth returns the current queued-execution count (tests).
func (s *Server) queueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// DegradedState reports whether the server is refusing admissions over a
// disk problem, and why.
func (s *Server) DegradedState() (bool, string) {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	return s.degraded, s.degradedReason
}

// probeRetryAfter is the Retry-After hint for degraded 503s: one probe
// cycle, rounded up to a whole second.
func (s *Server) probeRetryAfter() int {
	secs := int((s.cfg.ProbeInterval + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// enterDegraded flips the server into degraded mode (idempotent: the
// first reason wins until recovery) and starts the probe goroutine that
// will clear it.
func (s *Server) enterDegraded(reason string) {
	s.healthMu.Lock()
	if s.degraded {
		s.healthMu.Unlock()
		return
	}
	s.degraded = true
	s.degradedReason = reason
	s.degradedSince = time.Now()
	s.healthMu.Unlock()
	s.met.degradedEntered.Inc()
	s.cfg.Logger.Error("entering degraded mode: admissions suspended until a disk probe succeeds",
		"reason", reason)
	s.probeWG.Add(1)
	go s.probeLoop()
}

// exitDegraded clears degraded mode.
func (s *Server) exitDegraded() {
	s.healthMu.Lock()
	reason := s.degradedReason
	outage := time.Since(s.degradedSince)
	s.degraded = false
	s.degradedReason = ""
	s.healthMu.Unlock()
	s.cfg.Logger.Info("disk probe succeeded; degraded mode cleared, admissions resumed",
		"reason", reason, "outage", outage.Round(time.Millisecond))
}

// probeLoop retries the disk probe every ProbeInterval until it succeeds
// or the server shuts down. One loop runs per degraded episode.
func (s *Server) probeLoop() {
	defer s.probeWG.Done()
	ticker := time.NewTicker(s.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-ticker.C:
			if err := s.probeDisk(); err != nil {
				s.cfg.Logger.Debug("disk probe failed; staying degraded", "err", err)
				continue
			}
			s.exitDegraded()
			return
		}
	}
}

// probeDisk exercises the same durability paths whose failure degrades
// the server — a no-op journal append (write + fsync through the WAL
// pipeline; replay ignores probe entries) and a synced scratch file in
// the store directory — so recovery is decided by the subsystems that
// actually failed, not by an unrelated disk touch.
func (s *Server) probeDisk() error {
	s.mu.Lock()
	err := s.journal.Append(journalEntry{Op: opProbe})
	if err == nil {
		// Probe spam is reclaimed by the same online compaction.
		s.maybeRotateLocked()
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	scratch := filepath.Join(s.cfg.DataDir, "store", ".probe")
	if err := writeSynced(s.cfg.FS, scratch, []byte("ok\n")); err != nil {
		return err
	}
	return s.cfg.FS.Remove(scratch)
}
