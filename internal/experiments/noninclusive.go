package experiments

import (
	"fmt"

	"leakyway/internal/channel"
	"leakyway/internal/hier"
	"leakyway/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "noninclusive",
		Title: "Extension — non-inclusive LLCs and the directory NTP+NTP conjecture (Section VI-B)",
		Paper: "on server parts PREFETCHNTA fills only the L1 and the directory; the paper conjectures a directory version of the channel and leaves it as future work",
		Run:   runNonInclusive,
	})
}

func runNonInclusive(ctx *Context) (*Result, error) {
	res := &Result{}
	bits := ctx.Trials(1500)
	rows := [][]string{}
	type variant struct {
		name, key string
		mod       func(p *platformCfg)
	}
	variants := []variant{
		{"inclusive LLC (client parts)", "inclusive", func(p *platformCfg) {}},
		{"non-inclusive LLC, no directory model", "noninclusive", func(p *platformCfg) {
			p.NonInclusive = true
		}},
		{"non-inclusive + directory, NTA tracked like loads", "dir_plain", func(p *platformCfg) {
			p.NonInclusive = true
			p.DirectoryWays = 12
		}},
		{"non-inclusive + directory, NTA entries evict first (conjecture)", "dir_ntp", func(p *platformCfg) {
			p.NonInclusive = true
			p.DirectoryWays = 12
			p.DirectoryNTAIsVictim = true
		}},
	}
	for _, v := range variants {
		p := ctx.Platforms[0]
		v.mod(&p)
		cfg := channel.DefaultConfig(p.Name, p.FreqGHz)
		cfg.NoisePeriod = 0
		cfg.Interval = 1500
		m := sim.MustNewMachine(p, 1<<30, ctx.Seed)
		rep, _ := channel.RunNTPNTP(m, cfg, channel.RandomMessage(bits, ctx.Seed))
		rows = append(rows, []string{
			v.name,
			fmt.Sprintf("%.2f%%", 100*rep.BER),
			fmt.Sprintf("%.1f KB/s", rep.CapacityKBps),
		})
		res.Metric(v.key+"_capacity", rep.CapacityKBps)
		res.Metric(v.key+"_ber", rep.BER)
	}
	renderTable(ctx, []string{"LLC organization", "BER", "capacity"}, rows)
	ctx.Printf("without an inclusive LLC the receiver's probe always hits its own L1 and the channel dies;\n")
	ctx.Printf("under the paper's Section VI-B conjecture the directory recreates the one-way competition\n")
	ctx.Printf("and the channel returns at full speed — the attack surface the paper left as future work\n")
	return res, nil
}

// platformCfg aliases the hierarchy config for the variant table.
type platformCfg = hier.Config
