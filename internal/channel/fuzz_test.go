package channel

import (
	"bytes"
	"testing"
)

// Native fuzz targets; their seed corpora run as ordinary unit tests under
// `go test` and can be expanded with `go test -fuzz`.

func FuzzBitsBytesRoundTrip(f *testing.F) {
	f.Add([]byte("leaky way"))
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xFF, 0xA5})
	f.Fuzz(func(t *testing.T, data []byte) {
		got := BitsToBytes(BytesToBits(data))
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip: %x -> %x", data, got)
		}
	})
}

func FuzzHammingRoundTrip(f *testing.F) {
	f.Add([]byte("payload"), uint8(0))
	f.Add([]byte{0xFF}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, flip uint8) {
		bits := BytesToBits(data)
		enc := EncodeHamming74(bits)
		// Flip at most one bit per codeword, position flip%7.
		for i := 0; i+7 <= len(enc); i += 7 {
			enc[i+int(flip)%7] = !enc[i+int(flip)%7]
		}
		dec := DecodeHamming74(enc)
		if len(dec) < len(bits) {
			t.Fatalf("decoded %d bits, want >= %d", len(dec), len(bits))
		}
		for i := range bits {
			if dec[i] != bits[i] {
				t.Fatalf("bit %d not corrected", i)
			}
		}
	})
}

func FuzzRepetitionMajority(f *testing.F) {
	f.Add([]byte{0xAA}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, k uint8) {
		rep := int(k%7) + 1
		bits := BytesToBits(data)
		enc := EncodeRepetition(bits, rep)
		dec := DecodeRepetition(enc, rep)
		if len(dec) != len(bits) {
			t.Fatalf("length %d, want %d", len(dec), len(bits))
		}
		for i := range bits {
			if dec[i] != bits[i] {
				t.Fatalf("bit %d corrupted without noise", i)
			}
		}
	})
}

func FuzzMedianGap(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, deltas []byte) {
		ts := make([]int64, 0, len(deltas)+1)
		cur := int64(0)
		ts = append(ts, cur)
		for _, d := range deltas {
			cur += int64(d) + 1
			ts = append(ts, cur)
		}
		got := medianGap(ts)
		if len(ts) < 2 {
			if got != 0 {
				t.Fatalf("medianGap of short input = %d", got)
			}
			return
		}
		// The median gap is bounded by the min and max gap.
		minG, maxG := int64(1<<62), int64(0)
		for i := 1; i < len(ts); i++ {
			g := ts[i] - ts[i-1]
			if g < minG {
				minG = g
			}
			if g > maxG {
				maxG = g
			}
		}
		if got < minG || got > maxG {
			t.Fatalf("median %d outside [%d,%d]", got, minG, maxG)
		}
	})
}
