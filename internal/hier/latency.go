package hier

import "math/rand"

// LatencyConfig is the cycle-cost model. Base values are calibrated so that
// *timed* operations (base + timer overhead + jitter) land in the ranges the
// paper reports on real silicon: an L1-hit load times at ≈70 cycles, an
// LLC hit at 90–100, and a DRAM access at more than 200 (Figure 5).
type LatencyConfig struct {
	L1Hit  int64 // load/prefetch serviced by the local L1
	L2Hit  int64 // serviced by the local L2
	LLCHit int64 // serviced by the shared LLC
	Mem    int64 // serviced by DRAM

	// Jitter amplitudes (± uniform) for each tier.
	L1Jit, L2Jit, LLCJit, MemJit int64

	// CLFLUSH costs, split by whether the line was cached (flushing a
	// cached — especially dirty — line is slower, the effect Flush+Flush
	// keys on).
	FlushPresent int64
	FlushDirty   int64
	FlushAbsent  int64
	FlushJit     int64

	// CohTransfer is the extra cost of a load serviced by cache-to-cache
	// forwarding from another core's Modified copy.
	CohTransfer int64
	// CohInval is the cost of invalidating remote Shared copies on a
	// store upgrade.
	CohInval int64

	// PTWalkBase and PTWalkStep model the page-table walk a prefetch of
	// an unmapped (e.g. kernel) address performs: total walk time is
	// PTWalkBase + resolvedLevels*PTWalkStep. The dependence on how deep
	// the translation resolves is the KASLR-breaking prefetch side
	// channel of the paper's Section VI-C related work.
	PTWalkBase int64
	PTWalkStep int64

	// Fence is the cost of LFENCE-style serialization.
	Fence int64

	// TimerOverhead is the fixed cost of an RDTSC-bracketed measurement;
	// TimerJit its noise. Timed ops return base+overhead+jitter.
	TimerOverhead int64
	TimerJit      int64
}

// DefaultLatency returns the Skylake-flavoured calibration used by most
// tests: timed L1 hit ≈ 69, timed LLC hit ≈ 95, timed DRAM ≈ 225.
func DefaultLatency() LatencyConfig {
	return LatencyConfig{
		L1Hit: 4, L2Hit: 12, LLCHit: 30, Mem: 160,
		L1Jit: 1, L2Jit: 2, LLCJit: 4, MemJit: 15,
		FlushPresent: 110, FlushDirty: 140, FlushAbsent: 80, FlushJit: 8,
		CohTransfer:   28,
		CohInval:      22,
		PTWalkBase:    40,
		PTWalkStep:    26,
		Fence:         10,
		TimerOverhead: 65, TimerJit: 3,
	}
}

// sample draws base ± jit using the hierarchy's RNG.
func sample(rng *rand.Rand, base, jit int64) int64 {
	if jit <= 0 {
		return base
	}
	return base + rng.Int63n(2*jit+1) - jit
}
