package hier

import (
	"testing"

	"leakyway/internal/mem"
)

func poolTestConfig(seed int64) Config {
	return Config{
		Name: "pool-test", Cores: 2, FreqGHz: 1,
		L1Sets: 8, L1Ways: 4,
		L2Sets: 16, L2Ways: 4,
		LLCSlices: 2, LLCSetsPerSlice: 32, LLCWays: 8,
		Lat:        DefaultLatency(),
		HWPrefetch: HWPrefetchConfig{AdjacentLine: true, Stream: true},
		Seed:       seed,
	}
}

// opFingerprint drives a deterministic op sequence and records every
// outcome; it is sensitive to any residual line, policy, prefetcher or RNG
// state.
func opFingerprint(h *Hierarchy, salt uint64) []int64 {
	var fp []int64
	now := int64(0)
	for k := uint64(0); k < 200; k++ {
		pa := mem.PAddr((salt + k*64*7) % (1 << 20))
		var r Result
		switch k % 4 {
		case 0, 1:
			r = h.Load(int(k%2), pa, now)
		case 2:
			r = h.Store(int(k%2), pa, now)
		case 3:
			r = h.Flush(pa, now)
		}
		now += r.Latency
		fp = append(fp, int64(r.Level), r.Latency)
	}
	return fp
}

func TestPoolRecycleMatchesFresh(t *testing.T) {
	fresh := MustNew(poolTestConfig(7))
	want := opFingerprint(fresh, 1)

	p := NewPool()
	h1, err := p.Get(poolTestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	opFingerprint(h1, 99) // dirty every layer with an unrelated workload
	p.Put(h1)

	h2, err := p.Get(poolTestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h1 {
		t.Fatalf("pool built a new hierarchy instead of recycling (same geometry)")
	}
	if h2.Config().Seed != 7 {
		t.Fatalf("recycled hierarchy seed = %d, want 7", h2.Config().Seed)
	}
	got := opFingerprint(h2, 1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recycled hierarchy diverges from fresh at op-record %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestPoolKeysOnGeometry(t *testing.T) {
	p := NewPool()
	a, err := p.Get(poolTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	p.Put(a)
	other := poolTestConfig(2)
	other.LLCWays = 12
	b, err := p.Get(other)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("pool recycled a hierarchy across different geometries")
	}
	// The original geometry is still pooled.
	c, err := p.Get(poolTestConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("pool did not recycle the idle same-geometry hierarchy")
	}
}

func TestPoolPutForeignHierarchyIgnored(t *testing.T) {
	p := NewPool()
	h := MustNew(poolTestConfig(1))
	p.Put(h) // not from this pool: must be ignored, not recycled
	got, err := p.Get(poolTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if got == h {
		t.Fatalf("pool recycled a hierarchy it never handed out")
	}
}
